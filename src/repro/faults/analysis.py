"""Retransmission-aware schedulability under a rate-bounded lossy medium.

The fault model of :mod:`repro.faults.plan` guarantees that any window of
width ``W`` contains at most ``floor(W * rate) + 1`` events of each driven
kind.  That bound turns medium faults into a static per-period error
budget, TDMH-MAC style:

**PDP (Theorem 4.1).**  Each ring fault (token loss or membership change)
stalls the medium for the recovery latency ``T_rec``; each corrupted frame
wastes at most one effective frame time plus one token walk,
``κ = max(F, Θ) + Θ``.  Inflating each augmented length ``C'_i`` by

    ``E_i = ring_events(P_i) · T_rec + corruptions(P_i) · κ``

keeps the exact rate-monotonic test *sound*: every level-``i`` test window
``t`` satisfies ``t <= P_i``, the fault bounds are monotone in the window,
and the inflated demand ``demand(t) + Σ_{j<=i} E_j · ceil(t/P_j)`` exceeds
the true demand by at least ``E_i`` — which alone covers every fault the
window can contain.  The inflation is constant per stream, so the test's
scheduling points (multiples of the periods) remain exactly the right
evaluation set.

**TTP (Theorem 5.1).**  Ring stalls delay the token, shrinking the usable
part of each period to ``P_i - ring_events(P_i) · T_rec``; Johnson's bound
then guarantees only ``q_u = floor(usable / TTRT)`` visits.  A corrupted
frame can waste (at most) one visit's whole synchronous budget, so
``q_eff = q_u - corruptions(P_i)`` visits remain productive, and the local
scheme must allocate ``h_i = C_i / (q_eff - 1) + F_ovhd``.  The protocol
constraint ``Σ h_i <= TTRT - δ`` is unchanged (larger ``h_i`` make it
strictly harder to satisfy).

Both tests degrade continuously to the fault-free Theorems as every rate
approaches zero, and at rate exactly zero they are *identical* to the
originals (pinned by unit tests).  The ``analysis_sound_under_loss`` fuzz
property referees the soundness claim against fault-injected simulation
runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.boundary import token_visit_count
from repro.analysis.pdp import PDPAnalysis
from repro.analysis.ttp import TTPAllocation, TTPAnalysis
from repro.errors import AllocationError, ConfigurationError
from repro.faults.plan import FaultPlan
from repro.messages.message_set import MessageSet

__all__ = [
    "FaultBudget",
    "pdp_fault_inflations",
    "pdp_fault_aware_schedulable",
    "ttp_fault_aware_allocation",
    "ttp_fault_aware_schedulable",
    "fault_aware_breakdown_scale",
]


@dataclass(frozen=True)
class FaultBudget:
    """The declared worst-case fault rates an analysis must tolerate.

    A :class:`~repro.faults.plan.FaultPlan` drawn *at or below* these
    rates (same or lower rate per kind, same or lower recovery latency)
    can never exceed the per-window event bounds this budget charges.
    """

    token_loss_rate_hz: float = 0.0
    corruption_rate_hz: float = 0.0
    membership_rate_hz: float = 0.0
    recovery_time_s: float = 1e-3

    def __post_init__(self) -> None:
        for name in ("token_loss_rate_hz", "corruption_rate_hz", "membership_rate_hz"):
            rate = getattr(self, name)
            if not math.isfinite(rate) or rate < 0.0:
                raise ConfigurationError(
                    f"fault rate {name} must be finite and non-negative, got {rate!r}"
                )
        if not math.isfinite(self.recovery_time_s) or self.recovery_time_s < 0.0:
            raise ConfigurationError(
                "recovery time must be finite and non-negative, "
                f"got {self.recovery_time_s!r}"
            )

    @classmethod
    def from_plan(cls, plan: FaultPlan) -> "FaultBudget":
        """The tightest budget covering ``plan``."""
        return cls(
            token_loss_rate_hz=plan.token_loss_rate_hz,
            corruption_rate_hz=plan.corruption_rate_hz,
            membership_rate_hz=plan.membership_rate_hz,
            recovery_time_s=plan.recovery_time_s,
        )

    def covers(self, plan: FaultPlan) -> bool:
        """True when every plan rate/cost is at or below this budget."""
        return (
            plan.token_loss_rate_hz <= self.token_loss_rate_hz
            and plan.corruption_rate_hz <= self.corruption_rate_hz
            and plan.membership_rate_hz <= self.membership_rate_hz
            and plan.recovery_time_s <= self.recovery_time_s
        )

    @staticmethod
    def _bound(rate_hz: float, window_s: float) -> int:
        if rate_hz <= 0.0 or window_s <= 0.0:
            return 0
        return int(math.floor(window_s * rate_hz)) + 1

    def ring_events_bound(self, window_s: float) -> int:
        """Worst-case ring-stalling events (losses + membership) per window."""
        return self._bound(self.token_loss_rate_hz, window_s) + self._bound(
            self.membership_rate_hz, window_s
        )

    def corruption_bound(self, window_s: float) -> int:
        """Worst-case corrupted frames per window."""
        return self._bound(self.corruption_rate_hz, window_s)

    @property
    def inert(self) -> bool:
        """True when no fault kind is budgeted."""
        return (
            self.token_loss_rate_hz == 0.0
            and self.corruption_rate_hz == 0.0
            and self.membership_rate_hz == 0.0
        )


# -- PDP ----------------------------------------------------------------------


def _pdp_corruption_cost(analysis: PDPAnalysis) -> float:
    """Worst-case medium time one corrupted PDP frame can waste.

    The corrupted transmission occupies at most one effective frame time
    ``max(F, Θ)`` (short frames occupy less), and the retransmission pays
    at most one extra token walk, bounded by a full lap ``Θ`` in either
    token-walk model and either variant.
    """
    theta = analysis.ring.theta
    frame_time = analysis.frame.frame_time(analysis.ring.bandwidth_bps)
    return max(frame_time, theta) + theta


def pdp_fault_inflations(
    analysis: PDPAnalysis, ordered: MessageSet, budget: FaultBudget
) -> np.ndarray:
    """Per-stream error budgets ``E_i`` for ``ordered`` (any stream order)."""
    recovery = budget.recovery_time_s
    kappa = _pdp_corruption_cost(analysis)
    return np.array(
        [
            budget.ring_events_bound(period) * recovery
            + budget.corruption_bound(period) * kappa
            for period in ordered.periods
        ],
        dtype=float,
    )


def pdp_fault_aware_schedulable(
    analysis: PDPAnalysis, message_set: MessageSet, budget: FaultBudget
) -> bool:
    """Theorem 4.1 with the per-period fault budget folded into ``C'_i``.

    Accepting implies every fault plan at or below ``budget`` meets all
    deadlines; with an inert budget this is exactly
    ``analysis.is_schedulable``.
    """
    if len(message_set) == 0:
        return True
    ordered = message_set.rate_monotonic()
    lengths = analysis.augmented_lengths(ordered)
    if not budget.inert:
        lengths = lengths + pdp_fault_inflations(analysis, ordered, budget)
    # The exact-test structure depends only on the periods, so the cached
    # test is reused across budgets (private by convention, stable by the
    # batch-equivalence suite).
    test = analysis._exact_test_for(ordered)
    return bool(test.is_schedulable(lengths, analysis.blocking))


# -- TTP ----------------------------------------------------------------------


def ttp_fault_aware_allocation(
    analysis: TTPAnalysis,
    message_set: MessageSet,
    budget: FaultBudget,
    ttrt_s: float | None = None,
) -> TTPAllocation:
    """Local-scheme allocation charged for the fault budget.

    Raises :class:`AllocationError` when some stream cannot be guaranteed:
    either recovery stalls can swallow a whole period, or fewer than two
    productive token visits survive the budget.  With an inert budget this
    reduces exactly to :meth:`TTPAnalysis.allocate`.
    """
    if ttrt_s is None:
        ttrt_s = analysis.select_ttrt(message_set)
    if budget.inert:
        return analysis.allocate(message_set, ttrt_s)

    bandwidth = analysis.ring.bandwidth_bps
    overhead = analysis.frame_overhead_time
    recovery = budget.recovery_time_s
    visits: list[int] = []
    bandwidths: list[float] = []
    augmented: list[float] = []
    for stream in message_set:
        period = stream.period_s
        usable = period - budget.ring_events_bound(period) * recovery
        if usable <= 0.0:
            raise AllocationError(
                f"recovery stalls ({budget.ring_events_bound(period)} × "
                f"{recovery!r}s) can consume the whole period {period!r}s"
            )
        q_eff = token_visit_count(usable, ttrt_s) - budget.corruption_bound(period)
        if q_eff < 2:
            raise AllocationError(
                f"period {period!r}s retains only {q_eff} productive token "
                f"visits at TTRT {ttrt_s!r}s under the fault budget; at "
                "least 2 are required"
            )
        c_i = stream.payload_time(bandwidth)
        visits.append(q_eff)
        bandwidths.append(c_i / (q_eff - 1) + overhead)
        augmented.append(c_i + (q_eff - 1) * overhead)
    return TTPAllocation(
        ttrt_s=ttrt_s,
        token_visits=tuple(visits),
        bandwidths_s=tuple(bandwidths),
        augmented_lengths_s=tuple(augmented),
        delta_s=analysis.delta,
    )


def ttp_fault_aware_schedulable(
    analysis: TTPAnalysis, message_set: MessageSet, budget: FaultBudget
) -> bool:
    """Theorem 5.1 under the fault budget (allocation + protocol constraint)."""
    if len(message_set) == 0:
        return True
    try:
        allocation = ttp_fault_aware_allocation(analysis, message_set, budget)
    except AllocationError:
        return False
    return allocation.satisfies_protocol_constraint()


# -- breakdown search ---------------------------------------------------------


def fault_aware_breakdown_scale(
    is_schedulable,
    message_set: MessageSet,
    rel_tol: float = 1e-3,
    max_scale: float = 1e6,
) -> float:
    """Largest payload scale ``is_schedulable`` accepts (monotone bisection).

    ``is_schedulable`` is any predicate over a message set that is monotone
    in payload scale — the fault-aware tests qualify because the inflation
    terms are payload-independent.  Returns 0.0 when even a vanishing
    payload is rejected (the fault budget alone exceeds the period).
    """
    if len(message_set) == 0:
        return float(max_scale)

    def accepts(scale: float) -> bool:
        return bool(is_schedulable(message_set.scaled(scale)))

    if accepts(1.0):
        low, high = 1.0, 2.0
        while accepts(high):
            low, high = high, high * 2.0
            if high > max_scale:
                return float(max_scale)
    else:
        low, high = 0.5, 1.0
        while not accepts(low):
            low, high = low / 2.0, low
            if low < 1e-12:
                return 0.0
    while high - low > rel_tol * low:
        mid = math.sqrt(low * high)
        if accepts(mid):
            low = mid
        else:
            high = mid
    return low
