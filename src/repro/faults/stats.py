"""Fault-injection accounting, dependency-free.

Lives in its own leaf module so both the faults layer (which produces the
numbers) and :mod:`repro.sim.trace` (which attaches them to simulation
reports and re-exports the class) can import it without a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FaultStats"]


@dataclass
class FaultStats:
    """Fault-injection accounting for one simulation run.

    Populated by :class:`repro.faults.injector.FaultInjector` while the
    simulators consume a :class:`~repro.faults.plan.FaultPlan`; attached to
    the run's report so the recovery cost of a lossy medium is auditable
    next to the deadline outcome.

    Attributes:
        token_losses: ring events where the token was lost.
        membership_events: station insertions/removals (each re-runs the
            token claim process, like a loss).
        corrupted_frames: transmissions that occupied the medium but
            delivered no payload (forcing retransmission).
        recovery_time_s: total medium time stalled in token claim/recovery.
        corrupted_time_s: total medium time wasted by corrupted frames.
    """

    token_losses: int = 0
    membership_events: int = 0
    corrupted_frames: int = 0
    recovery_time_s: float = 0.0
    corrupted_time_s: float = 0.0

    @property
    def ring_events(self) -> int:
        """Ring-stalling events (losses plus membership changes)."""
        return self.token_losses + self.membership_events
