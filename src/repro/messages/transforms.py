"""Transformations on message sets used by the breakdown machinery.

The average-breakdown-utilization study repeatedly needs two operations:

* scale every payload by a common factor λ (the saturation search variable),
* renormalize a set so its utilization at a given bandwidth hits a target
  (useful for seeding searches and for building controlled test fixtures).

Both return new sets; message sets are immutable.
"""

from __future__ import annotations

from repro.errors import MessageSetError
from repro.messages.message_set import MessageSet

__all__ = ["scale_payloads", "set_utilization", "with_payloads"]


def scale_payloads(message_set: MessageSet, factor: float) -> MessageSet:
    """Scale every payload in ``message_set`` by ``factor`` (>= 0)."""
    return message_set.scaled(factor)


def set_utilization(
    message_set: MessageSet, bandwidth_bps: float, target_utilization: float
) -> MessageSet:
    """Rescale payloads so ``U(M)`` equals ``target_utilization``.

    The relative payload proportions between streams are preserved; only
    the common scale changes.  Requires the set to carry at least one
    non-empty payload, otherwise no scale can reach a positive target.
    """
    if target_utilization < 0:
        raise MessageSetError(
            f"target utilization must be non-negative, got {target_utilization!r}"
        )
    current = message_set.utilization(bandwidth_bps)
    if target_utilization == 0:
        return message_set.scaled(0.0)
    if current == 0:
        raise MessageSetError(
            "cannot scale an all-zero message set to a positive utilization"
        )
    return message_set.scaled(target_utilization / current)


def with_payloads(message_set: MessageSet, payloads_bits) -> MessageSet:
    """Replace the payloads of ``message_set`` stream-by-stream.

    ``payloads_bits`` must have one entry per stream, matched by position.
    """
    payloads = list(payloads_bits)
    if len(payloads) != len(message_set):
        raise MessageSetError(
            f"expected {len(message_set)} payloads, got {len(payloads)}"
        )
    return MessageSet(
        stream.with_payload(payload)
        for stream, payload in zip(message_set, payloads)
    )
