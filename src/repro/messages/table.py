"""Columnar message sets: the struct-of-arrays core for very large sets.

A :class:`StreamTable` holds a message set's periods, payloads and station
ids as three numpy arrays instead of ``n`` stream objects.  At the paper's
scale (tens to hundreds of streams) the object representation is fine; at
admission-service or sweep scale (10^5–10^6+ streams) the per-object
overhead dominates everything — construction, pickling, and every
``for stream in message_set`` loop.  The table keeps one process able to
hold and analyse million-stream sets while presenting the *same* API
surface the analyses consume from :class:`~repro.messages.message_set.MessageSet`:
``periods`` / ``payloads_bits`` / ``min_period`` / ``max_period`` /
``utilization`` / ``rate_monotonic`` / ``scaled`` / iteration.

Equivalence contract (pinned by the ``columnar_equiv`` fuzz property and
``tests/test_messages_table.py``):

* ``objects -> table -> objects`` round-trips **bit-identically**,
  including degenerate sets (n = 1, equal periods, zero payloads);
* :meth:`rate_monotonic` produces exactly the order of
  ``MessageSet.rate_monotonic()`` (period, then payload, then station);
* per-stream quantities (:meth:`utilizations`, scaled payloads, augmented
  lengths computed from the columns) are bit-identical to the scalar
  object path — the columns hold the very same float64 values;
* aggregate sums (:meth:`utilization`) may differ from the object path by
  float association only; verdict-level agreement is pinned instead.

Analyses detect tables through the ``is_columnar`` marker attribute
(duck-typed, no import cycle) and switch to vectorized kernels; every
scalar object path remains in place as the oracle.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import MessageSetError
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream

__all__ = ["StreamTable"]


def _readonly(array: np.ndarray) -> np.ndarray:
    array.flags.writeable = False
    return array


class StreamTable(Sequence[SynchronousStream]):
    """An immutable columnar message set (struct of arrays).

    Args:
        periods_s: per-stream periods in seconds (1-D, positive, finite).
        payloads_bits: per-stream payload lengths in bits (non-negative,
            finite, same shape).
        stations: per-stream station ids (non-negative integers); defaults
            to ``0..n-1`` — one stream per station, the paper's model.

    The columns are copied once and frozen read-only, so a table can be
    shared freely (and hashed) like a :class:`MessageSet`.
    """

    #: Duck-type marker the analyses dispatch on (no import needed).
    is_columnar = True

    __slots__ = ("_periods", "_payloads", "_stations")

    def __init__(
        self,
        periods_s: "Sequence[float] | np.ndarray",
        payloads_bits: "Sequence[float] | np.ndarray",
        stations: "Sequence[int] | np.ndarray | None" = None,
    ):
        periods = np.array(periods_s, dtype=float)
        payloads = np.array(payloads_bits, dtype=float)
        if periods.ndim != 1 or payloads.shape != periods.shape:
            raise MessageSetError(
                "periods and payloads must be matching 1-D columns, got "
                f"shapes {periods.shape} and {payloads.shape}"
            )
        if stations is None:
            station_ids = np.arange(periods.size, dtype=np.int64)
        else:
            station_ids = np.array(stations, dtype=np.int64)
            if station_ids.shape != periods.shape:
                raise MessageSetError(
                    "stations column must match the period column, got "
                    f"shapes {station_ids.shape} and {periods.shape}"
                )
        if periods.size:
            if not np.all(np.isfinite(periods)) or np.any(periods <= 0):
                raise MessageSetError("periods must be positive and finite")
            if not np.all(np.isfinite(payloads)) or np.any(payloads < 0):
                raise MessageSetError("payloads must be non-negative and finite")
            if np.any(station_ids < 0):
                raise MessageSetError("station ids must be non-negative")
        self._periods = _readonly(periods)
        self._payloads = _readonly(payloads)
        self._stations = _readonly(station_ids)

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_streams(
        cls, streams: Iterable[SynchronousStream]
    ) -> "StreamTable":
        """Columnarize an iterable of streams (order preserved)."""
        items = list(streams)
        n = len(items)
        return cls(
            np.fromiter((s.period_s for s in items), dtype=float, count=n),
            np.fromiter((s.payload_bits for s in items), dtype=float, count=n),
            np.fromiter((s.station for s in items), dtype=np.int64, count=n),
        )

    @classmethod
    def from_message_set(cls, message_set: MessageSet) -> "StreamTable":
        """Columnarize a :class:`MessageSet` (bit-identical columns)."""
        return cls.from_streams(message_set)

    def to_message_set(self) -> MessageSet:
        """The object-path view of this table (bit-identical round trip)."""
        return MessageSet(
            SynchronousStream(period_s=p, payload_bits=c, station=s)
            for p, c, s in zip(
                self._periods.tolist(),
                self._payloads.tolist(),
                self._stations.tolist(),
            )
        )

    # -- Sequence protocol -------------------------------------------------------

    def __len__(self) -> int:
        return self._periods.size

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return StreamTable(
                self._periods[index],
                self._payloads[index],
                self._stations[index],
            )
        return SynchronousStream(
            period_s=float(self._periods[index]),
            payload_bits=float(self._payloads[index]),
            station=int(self._stations[index]),
        )

    def __iter__(self) -> Iterator[SynchronousStream]:
        for p, c, s in zip(
            self._periods.tolist(),
            self._payloads.tolist(),
            self._stations.tolist(),
        ):
            yield SynchronousStream(period_s=p, payload_bits=c, station=s)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamTable):
            return NotImplemented
        return (
            np.array_equal(self._periods, other._periods)
            and np.array_equal(self._payloads, other._payloads)
            and np.array_equal(self._stations, other._stations)
        )

    def __hash__(self) -> int:
        return hash(
            (
                self._periods.tobytes(),
                self._payloads.tobytes(),
                self._stations.tobytes(),
            )
        )

    def __repr__(self) -> str:
        return f"StreamTable(n={len(self)})"

    # -- columns and aggregates ---------------------------------------------------

    @property
    def periods(self) -> np.ndarray:
        """``P_i`` column (read-only float64 view, construction order)."""
        return self._periods

    @property
    def payloads_bits(self) -> np.ndarray:
        """``C_i^b`` column (read-only float64 view, construction order)."""
        return self._payloads

    @property
    def stations(self) -> np.ndarray:
        """Station id column (read-only int64 view)."""
        return self._stations

    @property
    def min_period(self) -> float:
        """``P_min``; raises for an empty table."""
        self._require_nonempty()
        return float(self._periods.min())

    @property
    def max_period(self) -> float:
        """``P_max``; raises for an empty table."""
        self._require_nonempty()
        return float(self._periods.max())

    def utilizations(self, bandwidth_bps: float) -> np.ndarray:
        """Per-stream ``C_i / P_i`` — elementwise bit-identical to the
        object path (``(bits / bps) / period``, the same two divisions)."""
        if bandwidth_bps <= 0.0:
            raise MessageSetError(
                f"bandwidth must be positive, got {bandwidth_bps!r}"
            )
        return (self._payloads / bandwidth_bps) / self._periods

    def utilization(self, bandwidth_bps: float) -> float:
        """``U(M) = Σ C_i / P_i`` (pairwise numpy sum; the object path sums
        sequentially, so the aggregate may differ by float association)."""
        return float(np.sum(self.utilizations(bandwidth_bps)))

    def total_payload_bits(self) -> float:
        """Sum of payload lengths across streams, in bits."""
        return float(np.sum(self._payloads))

    def period_key(self) -> bytes:
        """Hashable identity of the period column (for structure caches)."""
        return self._periods.tobytes()

    def signature_rows(self) -> list[list]:
        """``[period, payload, station]`` rows with native Python scalars.

        Exactly the rows the breakdown result-cache builds from object
        sets, so a table and its object twin share cache entries.
        """
        return [
            [p, c, s]
            for p, c, s in zip(
                self._periods.tolist(),
                self._payloads.tolist(),
                self._stations.tolist(),
            )
        ]

    # -- orderings ----------------------------------------------------------------

    def rate_monotonic(self) -> "StreamTable":
        """The table sorted into rate-monotonic priority order.

        ``np.lexsort`` with period as the primary key, payload then
        station as tie-breakers — exactly the tuple order of
        ``sorted(streams)`` on the object path, so the permutation is
        identical to ``MessageSet.rate_monotonic()``.
        """
        order = np.lexsort((self._stations, self._payloads, self._periods))
        return StreamTable(
            self._periods[order], self._payloads[order], self._stations[order]
        )

    def is_rate_monotonic_ordered(self) -> bool:
        """True when the periods are already non-decreasing."""
        return bool(np.all(np.diff(self._periods) >= 0))

    # -- transformations -----------------------------------------------------------

    def scaled(self, factor: float) -> "StreamTable":
        """Scale every payload by ``factor``; periods are untouched."""
        if factor < 0:
            raise MessageSetError(
                f"scale factor must be non-negative, got {factor!r}"
            )
        return StreamTable(
            self._periods, self._payloads * factor, self._stations
        )

    def assigned_to_stations(self) -> "StreamTable":
        """Re-number stations 0..n-1 in current order."""
        return StreamTable(self._periods, self._payloads)

    # -- internals -------------------------------------------------------------------

    def _require_nonempty(self) -> None:
        if not self._periods.size:
            raise MessageSetError("operation requires a non-empty message set")
