"""Random message-set generation for the Monte Carlo study (Section 6).

The paper draws message periods from a uniform distribution parameterized
by the *average period* and the *maximum-to-minimum period ratio* (100 ms
and 10 for the reported experiments).  Payload lengths are drawn uniformly
and then rescaled to the saturation boundary by the breakdown machinery, so
only their relative proportions matter here.

All sampling goes through :class:`numpy.random.Generator` instances so that
every experiment is reproducible from a single seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.messages.table import StreamTable

__all__ = [
    "PeriodDistribution",
    "uniform_period_bounds",
    "MessageSetSampler",
    "uniform_payload_weights",
    "equal_payload_weights",
    "period_proportional_payload_weights",
]


def uniform_period_bounds(mean_period_s: float, ratio: float) -> tuple[float, float]:
    """Bounds ``(P_min, P_max)`` of the uniform period distribution.

    Solves ``(P_min + P_max) / 2 = mean`` and ``P_max / P_min = ratio``:

        ``P_min = 2 * mean / (1 + ratio)``, ``P_max = ratio * P_min``.
    """
    if mean_period_s <= 0:
        raise ConfigurationError(
            f"mean period must be positive, got {mean_period_s!r}"
        )
    if ratio < 1:
        raise ConfigurationError(
            f"max/min period ratio must be >= 1, got {ratio!r}"
        )
    p_min = 2.0 * mean_period_s / (1.0 + ratio)
    return p_min, ratio * p_min


@dataclass(frozen=True)
class PeriodDistribution:
    """Uniform period distribution in the paper's parameterization.

    Attributes:
        mean_period_s: average period (100 ms in the reported runs).
        ratio: maximum-to-minimum period ratio (10 in the reported runs).
            A ratio of exactly 1 degenerates to equal periods, which is the
            special case the paper uses to derive the sqrt TTRT rule.
    """

    mean_period_s: float
    ratio: float

    def __post_init__(self) -> None:
        # Validation happens inside uniform_period_bounds; call it for effect.
        uniform_period_bounds(self.mean_period_s, self.ratio)

    @property
    def bounds(self) -> tuple[float, float]:
        """``(P_min, P_max)`` of the distribution."""
        return uniform_period_bounds(self.mean_period_s, self.ratio)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` periods, in seconds."""
        low, high = self.bounds
        if low == high:
            return np.full(n, low)
        return rng.uniform(low, high, size=n)


# ---------------------------------------------------------------------------
# Payload weight laws
# ---------------------------------------------------------------------------
# A weight law maps (rng, periods) -> relative payload weights.  Absolute
# scale is irrelevant: the breakdown search rescales to saturation.

PayloadWeightLaw = Callable[[np.random.Generator, np.ndarray], np.ndarray]


def uniform_payload_weights(
    rng: np.random.Generator, periods: np.ndarray
) -> np.ndarray:
    """I.i.d. uniform(0, 1] weights — the Lehoczky/Sha/Ding methodology.

    The open-at-zero interval avoids degenerate zero-length streams, which
    would otherwise contribute nothing yet occupy a station.
    """
    return 1.0 - rng.uniform(0.0, 1.0, size=periods.shape[0])


def equal_payload_weights(
    rng: np.random.Generator, periods: np.ndarray
) -> np.ndarray:
    """All streams equally long (a common stress pattern for TTP)."""
    return np.ones(periods.shape[0])


def period_proportional_payload_weights(
    rng: np.random.Generator, periods: np.ndarray
) -> np.ndarray:
    """Payloads proportional to periods: every stream has equal utilization."""
    return np.asarray(periods, dtype=float).copy()


# ---------------------------------------------------------------------------
# Sampler
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MessageSetSampler:
    """Draws random message sets for Monte Carlo experiments.

    One stream is generated per station (the paper's model has exactly one
    synchronous stream per node).  Payloads are produced by ``weight_law``
    and then scaled so the set's *bit-level* utilization-per-second is
    numerically tame; the absolute scale is irrelevant because the
    breakdown search normalizes it away.

    Attributes:
        n_streams: number of streams (= stations carrying synchronous load).
        periods: the period distribution.
        weight_law: relative payload law (defaults to uniform weights).
        reference_payload_bits: scale applied to the unit-mean weights so
            generated sets have human-readable payload sizes.
    """

    n_streams: int
    periods: PeriodDistribution
    weight_law: PayloadWeightLaw = uniform_payload_weights
    reference_payload_bits: float = 8_000.0

    def __post_init__(self) -> None:
        if self.n_streams < 1:
            raise ConfigurationError(
                f"need at least one stream, got {self.n_streams!r}"
            )
        if self.reference_payload_bits <= 0:
            raise ConfigurationError(
                "reference payload must be positive, "
                f"got {self.reference_payload_bits!r}"
            )

    def _draw_payloads(
        self, rng: np.random.Generator, periods: np.ndarray
    ) -> np.ndarray:
        """Payload lengths for already-drawn periods (weight-law draw)."""
        weights = np.asarray(self.weight_law(rng, periods), dtype=float)
        if weights.shape != periods.shape:
            raise ConfigurationError(
                "weight law returned wrong shape: "
                f"{weights.shape} for {periods.shape}"
            )
        if np.any(weights < 0):
            raise ConfigurationError("weight law produced negative payloads")
        mean_weight = float(np.mean(weights)) or 1.0
        return weights / mean_weight * self.reference_payload_bits

    @staticmethod
    def _assemble(periods: np.ndarray, payloads: np.ndarray) -> MessageSet:
        return MessageSet(
            SynchronousStream(
                period_s=float(p), payload_bits=float(c), station=i
            )
            for i, (p, c) in enumerate(zip(periods, payloads))
        )

    def sample(self, rng: np.random.Generator) -> MessageSet:
        """Draw one message set, stations numbered 0..n-1."""
        periods = self.periods.sample(rng, self.n_streams)
        payloads = self._draw_payloads(rng, periods)
        return self._assemble(periods, payloads)

    def sample_table(self, rng: np.random.Generator) -> StreamTable:
        """Draw one message set directly as a columnar :class:`StreamTable`.

        Consumes the generator stream exactly like :meth:`sample`, and the
        resulting columns are bit-identical to columnarizing the object
        sample (``StreamTable.from_message_set(self.sample(rng))`` with an
        identically seeded generator).
        """
        periods = self.periods.sample(rng, self.n_streams)
        payloads = self._draw_payloads(rng, periods)
        return StreamTable(periods, payloads)

    def sample_many(
        self, rng: np.random.Generator, count: int
    ) -> list[MessageSet]:
        """Draw ``count`` independent message sets."""
        if count < 0:
            raise ConfigurationError(f"count must be non-negative, got {count!r}")
        return [self.sample(rng) for _ in range(count)]

    def sample_many_stratified(
        self,
        rng: np.random.Generator,
        count: int,
        *,
        strata: int = 1,
        antithetic: bool = False,
    ) -> list[MessageSet]:
        """Draw ``count`` sets with optional variance-reduction structure.

        With ``strata == 1`` and ``antithetic == False`` this is *exactly*
        :meth:`sample_many` — same generator consumption, bit-identical
        sets — so the streaming estimator's plain mode matches the fixed-N
        path sample for sample.

        ``strata = S > 1`` applies Latin-hypercube stratification to the
        *periods*: sets are produced in rounds of ``S``, and within a
        round every stream coordinate visits each of the ``S`` equal
        period sub-intervals exactly once (a fresh random permutation per
        coordinate keeps coordinates independent).  Each marginal period
        sample is still exactly Uniform(P_min, P_max), so the estimator
        stays unbiased while the period-driven variance component shrinks.

        ``antithetic = True`` follows every drawn set with its antithetic
        twin: periods reflected to ``P_min + P_max - P``, payload lengths
        *shared* with the base set, which pairs the protocols' common
        period sensitivity across the reflection.  Each twin is again
        marginally a legitimate sample (the reflection of Uniform is
        Uniform; weights are exchangeable), preserving unbiasedness.
        For a degenerate distribution (ratio 1, ``P_min == P_max``) the
        twin coincides with its base, so antithetic pairing is a no-op.

        Rounds are truncated to ``count`` sets; pass a ``count`` that is a
        multiple of ``strata`` (times 2 when antithetic) to keep whole
        rounds.
        """
        if count < 0:
            raise ConfigurationError(f"count must be non-negative, got {count!r}")
        if strata < 1:
            raise ConfigurationError(f"strata must be >= 1, got {strata!r}")
        if strata == 1 and not antithetic:
            return [self.sample(rng) for _ in range(count)]
        low, high = self.periods.bounds
        span = high - low
        sets: list[MessageSet] = []
        while len(sets) < count:
            # One Latin-hypercube round: u[k, j] lands base set k's stream
            # j in a distinct stratum per coordinate.
            offsets = rng.random((strata, self.n_streams))
            lanes = np.tile(
                np.arange(strata, dtype=float)[:, None], (1, self.n_streams)
            )
            u = (rng.permuted(lanes, axis=0) + offsets) / strata
            for k in range(strata):
                if span == 0.0:
                    periods = np.full(self.n_streams, low)
                else:
                    periods = low + span * u[k]
                payloads = self._draw_payloads(rng, periods)
                sets.append(self._assemble(periods, payloads))
                if antithetic and len(sets) < count:
                    if span == 0.0:
                        anti = periods
                    else:
                        anti = low + span * (1.0 - u[k])
                    sets.append(self._assemble(anti, payloads))
                if len(sets) >= count:
                    break
        return sets[:count]
