"""The synchronous message model of Section 3.2.

A real-time workload is a :class:`~repro.messages.message_set.MessageSet` of
:class:`~repro.messages.stream.SynchronousStream` objects — one periodic
stream per station, deadline equal to period.  Payload lengths are stored in
*bits* (the physical quantity); transmission times ``C_i`` are derived from
the ring bandwidth at analysis time, which lets one message set be evaluated
across a whole bandwidth sweep.

:mod:`~repro.messages.generators` draws random message sets from the
distributions of the paper's Monte Carlo study, and
:mod:`~repro.messages.transforms` provides the scaling operations used to
drive a set to its saturation boundary.
"""

from repro.messages.generators import (
    MessageSetSampler,
    PeriodDistribution,
    uniform_period_bounds,
)
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.messages.table import StreamTable
from repro.messages.transforms import (
    scale_payloads,
    set_utilization,
    with_payloads,
)

__all__ = [
    "SynchronousStream",
    "MessageSet",
    "StreamTable",
    "MessageSetSampler",
    "PeriodDistribution",
    "uniform_period_bounds",
    "scale_payloads",
    "set_utilization",
    "with_payloads",
]
