"""A single periodic synchronous message stream (Section 3.2).

Each stream ``S_i`` arrives at one station of the ring.  Messages arrive
every ``P_i`` seconds, each carrying ``C_i^b`` payload bits, and must finish
transmission by the end of the period in which they arrive.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import MessageSetError
from repro.units import transmission_time

__all__ = ["SynchronousStream"]


@dataclass(frozen=True, order=True)
class SynchronousStream:
    """One periodic real-time message stream.

    The ordering of streams is by ``(period_s, payload_bits, station)`` so
    that sorting a list of streams yields the rate-monotonic priority order
    (shorter period = higher priority) with a deterministic tie-break.

    Attributes:
        period_s: inter-arrival time ``P_i`` in seconds; also the relative
            deadline of every message in the stream.
        payload_bits: message payload length ``C_i^b`` in bits.
        station: index of the ring station the stream arrives at.  Purely
            informational for the analyses; the simulators use it for
            placement on the ring.
    """

    period_s: float
    payload_bits: float
    station: int = 0

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise MessageSetError(
                f"stream period must be positive, got {self.period_s!r}"
            )
        if self.payload_bits < 0:
            raise MessageSetError(
                f"stream payload must be non-negative, got {self.payload_bits!r}"
            )
        if self.station < 0:
            raise MessageSetError(
                f"station index must be non-negative, got {self.station!r}"
            )

    # -- derived quantities ---------------------------------------------------

    def payload_time(self, bandwidth_bps: float) -> float:
        """``C_i``: payload transmission time at ``bandwidth_bps``, seconds."""
        return transmission_time(self.payload_bits, bandwidth_bps)

    def utilization(self, bandwidth_bps: float) -> float:
        """This stream's utilization contribution ``C_i / P_i``."""
        return self.payload_time(bandwidth_bps) / self.period_s

    def rate_hz(self) -> float:
        """Message arrival rate, messages per second."""
        return 1.0 / self.period_s

    # -- transformations --------------------------------------------------------

    def scaled(self, factor: float) -> "SynchronousStream":
        """Return a copy with the payload scaled by ``factor`` (>= 0)."""
        if factor < 0:
            raise MessageSetError(f"scale factor must be non-negative, got {factor!r}")
        return replace(self, payload_bits=self.payload_bits * factor)

    def with_payload(self, payload_bits: float) -> "SynchronousStream":
        """Return a copy carrying ``payload_bits`` instead."""
        return replace(self, payload_bits=payload_bits)

    def with_station(self, station: int) -> "SynchronousStream":
        """Return a copy placed at a different station."""
        return replace(self, station=station)
