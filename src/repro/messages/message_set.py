"""Synchronous message sets (the ``M`` of Section 3.2).

A :class:`MessageSet` is an immutable ordered collection of
:class:`~repro.messages.stream.SynchronousStream` objects.  It provides the
aggregate quantities the analyses need (utilization, period extremes) and
the rate-monotonic ordering used by the priority driven protocol.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.errors import MessageSetError
from repro.messages.stream import SynchronousStream

__all__ = ["MessageSet"]


class MessageSet(Sequence[SynchronousStream]):
    """An immutable collection of synchronous streams.

    The constructor preserves the given order (stations keep their
    identity); :meth:`rate_monotonic` returns a copy sorted into RM
    priority order, which is what the PDP analysis consumes.
    """

    __slots__ = ("_streams",)

    def __init__(self, streams: Iterable[SynchronousStream]):
        self._streams: tuple[SynchronousStream, ...] = tuple(streams)
        for stream in self._streams:
            if not isinstance(stream, SynchronousStream):
                raise MessageSetError(
                    f"message sets hold SynchronousStream objects, got {stream!r}"
                )

    # -- Sequence protocol -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._streams)

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return MessageSet(self._streams[index])
        return self._streams[index]

    def __iter__(self) -> Iterator[SynchronousStream]:
        return iter(self._streams)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MessageSet):
            return NotImplemented
        return self._streams == other._streams

    def __hash__(self) -> int:
        return hash(self._streams)

    def __repr__(self) -> str:
        return f"MessageSet({list(self._streams)!r})"

    # -- aggregate properties ---------------------------------------------------

    @property
    def streams(self) -> tuple[SynchronousStream, ...]:
        """The streams in construction order."""
        return self._streams

    @property
    def periods(self) -> tuple[float, ...]:
        """``P_i`` for every stream, in construction order."""
        return tuple(s.period_s for s in self._streams)

    @property
    def payloads_bits(self) -> tuple[float, ...]:
        """``C_i^b`` for every stream, in construction order."""
        return tuple(s.payload_bits for s in self._streams)

    @property
    def min_period(self) -> float:
        """``P_min``; raises for an empty set."""
        self._require_nonempty()
        return min(self.periods)

    @property
    def max_period(self) -> float:
        """``P_max``; raises for an empty set."""
        self._require_nonempty()
        return max(self.periods)

    def utilization(self, bandwidth_bps: float) -> float:
        """``U(M) = Σ C_i / P_i`` at ``bandwidth_bps`` (equation (3))."""
        return sum(s.utilization(bandwidth_bps) for s in self._streams)

    def total_payload_bits(self) -> float:
        """Sum of payload lengths across streams, in bits."""
        return sum(s.payload_bits for s in self._streams)

    # -- orderings ----------------------------------------------------------------

    def rate_monotonic(self) -> "MessageSet":
        """The set sorted into rate-monotonic priority order.

        Shorter period = higher priority (appears first).  Ties break on
        payload then station index so the order is deterministic.
        """
        return MessageSet(sorted(self._streams))

    def is_rate_monotonic_ordered(self) -> bool:
        """True when the streams are already in non-decreasing period order."""
        periods = self.periods
        return all(a <= b for a, b in zip(periods, periods[1:]))

    # -- transformations -----------------------------------------------------------

    def scaled(self, factor: float) -> "MessageSet":
        """Scale every payload by ``factor``; periods are untouched."""
        return MessageSet(s.scaled(factor) for s in self._streams)

    def assigned_to_stations(self) -> "MessageSet":
        """Re-number stations 0..n-1 in current order (one stream per station)."""
        return MessageSet(
            s.with_station(i) for i, s in enumerate(self._streams)
        )

    # -- internals -------------------------------------------------------------------

    def _require_nonempty(self) -> None:
        if not self._streams:
            raise MessageSetError("operation requires a non-empty message set")
