"""Content-addressed result store: in-memory LRU plus an optional disk layer.

The in-memory layer is always on and free: repeated validations of the
same workload inside one process (fuzz rounds, benchmark repetitions,
mutation campaigns) hit it without any configuration.  The disk layer is
opt-in — via :func:`configure`, the runner's ``--cache-dir``, or the
``REPRO_CACHE_DIR`` environment variable — and persists entries across
processes as ``<dir>/<namespace>/<key[:2]>/<key>.json``.

Safety rules:

* **Corruption can never produce a wrong answer.**  A truncated,
  malformed, or mismatched cache file is counted (``cache.<ns>.errors``),
  logged as a warning, removed best-effort, and treated as a miss — the
  caller recomputes.
* **Writes are atomic** (temp file + ``os.replace``) so a crashed writer
  leaves either the old entry or none.
* **Metrics never feed back into results**: hit/miss/write/error counters
  (``cache.<namespace>.hits`` etc.) are observational only.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict

from repro.obs import logging as obslog
from repro.obs import metrics as _metrics
from repro.obs import tracing

__all__ = ["ResultCache", "clear", "configure", "result_cache"]

_LOG = obslog.get_logger("cache")

#: Default bound on in-memory entries; old entries evict LRU-first.
_DEFAULT_MEMORY_ENTRIES = 4096


class ResultCache:
    """One content-addressed store (see module docstring)."""

    def __init__(
        self,
        directory: str | None = None,
        max_memory_entries: int = _DEFAULT_MEMORY_ENTRIES,
    ):
        self.directory = directory
        self._max_memory = max(int(max_memory_entries), 1)
        self._memory: "OrderedDict[str, object]" = OrderedDict()

    # -- internals ------------------------------------------------------------

    def _count(self, namespace: str, event: str) -> None:
        _metrics.counter(f"cache.{namespace}.{event}").inc()

    def _path(self, key: str, namespace: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, namespace, key[:2], f"{key}.json")

    def _memory_key(self, key: str, namespace: str) -> str:
        return f"{namespace}/{key}"

    def _remember(self, mkey: str, payload: object) -> None:
        self._memory[mkey] = payload
        self._memory.move_to_end(mkey)
        while len(self._memory) > self._max_memory:
            self._memory.popitem(last=False)
        _metrics.gauge("cache.memory_entries").set(len(self._memory))

    def _read_disk(self, key: str, namespace: str) -> object | None:
        path = self._path(key, namespace)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
            if not isinstance(record, dict) or record.get("key") != key:
                raise ValueError("cache record key mismatch")
            return record["payload"]
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError) as exc:
            # Corrupt or unreadable entry: warn, count, drop, recompute.
            self._count(namespace, "errors")
            _LOG.warning(
                "discarding unreadable cache entry %s (%s); recomputing",
                path, exc,
                extra={"namespace": namespace, "key": key},
            )
            try:
                os.unlink(path)
            except OSError:
                pass
            return None

    def _write_disk(self, key: str, payload: object, namespace: str) -> None:
        path = self._path(key, namespace)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump({"key": key, "payload": payload}, handle)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError as exc:
            self._count(namespace, "errors")
            _LOG.warning(
                "failed to write cache entry %s (%s); continuing uncached",
                path, exc,
                extra={"namespace": namespace, "key": key},
            )

    # -- public API -----------------------------------------------------------

    def get(self, key: str, namespace: str = "sim") -> object | None:
        """The stored payload, or None on a miss (including corruption)."""
        mkey = self._memory_key(key, namespace)
        if mkey in self._memory:
            self._memory.move_to_end(mkey)
            self._count(namespace, "hits")
            tracing.add(cache_hits=1)
            return self._memory[mkey]
        if self.directory is not None:
            payload = self._read_disk(key, namespace)
            if payload is not None:
                self._remember(mkey, payload)
                self._count(namespace, "hits")
                tracing.add(cache_hits=1)
                return payload
        self._count(namespace, "misses")
        tracing.add(cache_misses=1)
        return None

    def put(self, key: str, payload: object, namespace: str = "sim") -> None:
        """Store a payload under its content key."""
        self._remember(self._memory_key(key, namespace), payload)
        if self.directory is not None:
            self._write_disk(key, payload, namespace)
        self._count(namespace, "writes")
        tracing.add(cache_writes=1)

    def clear(self) -> None:
        """Drop every in-memory entry (disk entries are left alone)."""
        self._memory.clear()
        _metrics.gauge("cache.memory_entries").set(0)


_CACHE: ResultCache | None = None


def result_cache() -> ResultCache:
    """The process-wide cache (disk layer from ``REPRO_CACHE_DIR`` if set)."""
    global _CACHE
    if _CACHE is None:
        _CACHE = ResultCache(directory=os.environ.get("REPRO_CACHE_DIR"))
    return _CACHE


def configure(
    directory: str | None = None,
    max_memory_entries: int = _DEFAULT_MEMORY_ENTRIES,
) -> ResultCache:
    """Replace the process-wide cache (e.g. for ``--cache-dir``)."""
    global _CACHE
    _CACHE = ResultCache(
        directory=directory, max_memory_entries=max_memory_entries
    )
    return _CACHE


def clear() -> None:
    """Drop the process-wide cache's in-memory entries."""
    if _CACHE is not None:
        _CACHE.clear()
