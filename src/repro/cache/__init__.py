"""Content-addressed result cache (see USAGE.md §13).

Simulation verdicts and breakdown results are memoised under a canonical
hash of their full inputs plus a code-version salt, so identical
recomputations — fuzz rounds, repeated validations, incremental
experiment re-runs — are answered from the cache with bit-identical
payloads.  Hit/miss counters surface as ``cache.*`` metrics in manifests.
"""

from repro.cache.keys import (
    CACHE_SCHEMA_VERSION,
    canonical_json,
    chained_prefix_keys,
    code_salt,
    content_key,
    set_signature,
)
from repro.cache.store import ResultCache, clear, configure, result_cache

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "ResultCache",
    "canonical_json",
    "chained_prefix_keys",
    "clear",
    "code_salt",
    "configure",
    "content_key",
    "result_cache",
    "set_signature",
]
