"""Canonical content hashing for the result cache.

Key stability contract: a key depends only on the *values* of the payload
(dict insertion order is canonicalised away, floats round-trip through
``repr`` exactly), on :data:`CACHE_SCHEMA_VERSION`, and on the source
bytes of the simulation-relevant modules — never on process identity,
``PYTHONHASHSEED``, or filesystem state.  Two processes hashing the same
payload against the same checkout therefore produce the same key, and any
edit to simulation semantics (or a deliberate schema bump) invalidates
every previously stored entry at once.
"""

from __future__ import annotations

import hashlib
import importlib.util
import json
import os

from repro.errors import ConfigurationError

__all__ = ["CACHE_SCHEMA_VERSION", "canonical_json", "code_salt", "content_key"]

#: Bump to invalidate every cached result without touching code the salt
#: already covers (e.g. when the *meaning* of a stored payload changes).
CACHE_SCHEMA_VERSION = 1

#: Modules whose source participates in the code-version salt: an edit to
#: any simulation, analysis, or admission semantics must orphan memoised
#: verdicts.  The analysis modules matter twice over — the breakdown
#: searches memoise through them, and the admission service caches
#: ``(schedulable, tested_by)`` decisions they compute.
_SALT_MODULES: tuple[str, ...] = (
    "repro.sim.engine",
    "repro.sim.token_ring",
    "repro.sim.traffic",
    "repro.sim.trace",
    "repro.sim.pdp_sim",
    "repro.sim.ttp_sim",
    "repro.sim.fastpath",
    "repro.sim.fastpath_ttp",
    "repro.sim.dispatch",
    "repro.sim.validate",
    "repro.analysis.breakdown",
    "repro.analysis.rm",
    "repro.analysis.pdp",
    "repro.analysis.ttp",
    "repro.analysis.ttrt",
    "repro.analysis.boundary",
    "repro.analysis.bounds",
    "repro.admission",
)

#: Salt memo keyed by schema version, so tests that bump the version see a
#: recomputed salt while normal runs hash the module sources exactly once.
_SALT_BY_VERSION: dict[int, str] = {}


def _unserialisable(value: object) -> None:
    raise ConfigurationError(
        f"cache key payloads must be JSON-representable, got {type(value).__name__}"
    )


def canonical_json(payload: object) -> str:
    """The payload as order-independent, float-exact JSON text."""
    return json.dumps(
        payload,
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=True,  # breakdown scales can legitimately be inf/nan
        default=_unserialisable,
    )


def _module_source(name: str) -> bytes:
    try:
        spec = importlib.util.find_spec(name)
    except (ImportError, ValueError):
        return b"<unresolvable>"
    if spec is None or not spec.origin or not os.path.exists(spec.origin):
        return b"<missing>"
    with open(spec.origin, "rb") as handle:
        return handle.read()


def code_salt() -> str:
    """Digest of the schema version plus the salt modules' source bytes.

    Computed lazily (never at import time: resolving module specs imports
    parent packages, which would cycle during ``repro.sim`` init) and
    memoised per schema version.
    """
    version = CACHE_SCHEMA_VERSION
    salt = _SALT_BY_VERSION.get(version)
    if salt is None:
        digest = hashlib.sha256()
        digest.update(f"schema={version}".encode("ascii"))
        for name in _SALT_MODULES:
            digest.update(name.encode("ascii"))
            digest.update(b"\x00")
            digest.update(_module_source(name))
            digest.update(b"\x00")
        salt = digest.hexdigest()
        _SALT_BY_VERSION[version] = salt
    return salt


def content_key(payload: object) -> str:
    """SHA-256 over (code salt, canonical payload JSON) as a hex string."""
    digest = hashlib.sha256()
    digest.update(code_salt().encode("ascii"))
    digest.update(b"\x00")
    digest.update(canonical_json(payload).encode("utf-8"))
    return digest.hexdigest()
