"""Canonical content hashing for the result cache.

Key stability contract: a key depends only on the *values* of the payload
(dict insertion order is canonicalised away, floats round-trip through
``repr`` exactly), on :data:`CACHE_SCHEMA_VERSION`, and on the source
bytes of the simulation-relevant modules — never on process identity,
``PYTHONHASHSEED``, or filesystem state.  Two processes hashing the same
payload against the same checkout therefore produce the same key, and any
edit to simulation semantics (or a deliberate schema bump) invalidates
every previously stored entry at once.
"""

from __future__ import annotations

import hashlib
import importlib.util
import json
import os

from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "canonical_json",
    "code_salt",
    "content_key",
    "set_signature",
    "chained_prefix_keys",
]

#: Bump to invalidate every cached result without touching code the salt
#: already covers (e.g. when the *meaning* of a stored payload changes).
CACHE_SCHEMA_VERSION = 1

#: Modules whose source participates in the code-version salt: an edit to
#: any simulation, analysis, or admission semantics must orphan memoised
#: verdicts.  The analysis modules matter twice over — the breakdown
#: searches memoise through them, and the admission service caches
#: ``(schedulable, tested_by)`` decisions they compute.
_SALT_MODULES: tuple[str, ...] = (
    "repro.sim.engine",
    "repro.sim.token_ring",
    "repro.sim.traffic",
    "repro.sim.trace",
    "repro.sim.pdp_sim",
    "repro.sim.ttp_sim",
    "repro.sim.fastpath",
    "repro.sim.fastpath_ttp",
    "repro.sim.dispatch",
    "repro.sim.validate",
    "repro.analysis.breakdown",
    "repro.analysis.rm",
    "repro.analysis.pdp",
    "repro.analysis.ttp",
    "repro.analysis.ttrt",
    "repro.analysis.boundary",
    "repro.analysis.bounds",
    "repro.admission",
    "repro.admission_incremental",
)

#: Salt memo keyed by schema version, so tests that bump the version see a
#: recomputed salt while normal runs hash the module sources exactly once.
_SALT_BY_VERSION: dict[int, str] = {}


def _unserialisable(value: object):
    # Numpy scalars/arrays coerce to their exact native equivalents rather
    # than failing: columnar message sets hand payloads built from array
    # columns, and those must hash identically to object-built payloads.
    # (``np.float64`` never reaches here — it subclasses ``float`` and
    # ``json`` serialises it natively, with the same ``repr`` exactness.)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise ConfigurationError(
        f"cache key payloads must be JSON-representable, got {type(value).__name__}"
    )


def canonical_json(payload: object) -> str:
    """The payload as order-independent, float-exact JSON text."""
    return json.dumps(
        payload,
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=True,  # breakdown scales can legitimately be inf/nan
        default=_unserialisable,
    )


def _module_source(name: str) -> bytes:
    try:
        spec = importlib.util.find_spec(name)
    except (ImportError, ValueError):
        return b"<unresolvable>"
    if spec is None or not spec.origin or not os.path.exists(spec.origin):
        return b"<missing>"
    with open(spec.origin, "rb") as handle:
        return handle.read()


def code_salt() -> str:
    """Digest of the schema version plus the salt modules' source bytes.

    Computed lazily (never at import time: resolving module specs imports
    parent packages, which would cycle during ``repro.sim`` init) and
    memoised per schema version.
    """
    version = CACHE_SCHEMA_VERSION
    salt = _SALT_BY_VERSION.get(version)
    if salt is None:
        digest = hashlib.sha256()
        digest.update(f"schema={version}".encode("ascii"))
        for name in _SALT_MODULES:
            digest.update(name.encode("ascii"))
            digest.update(b"\x00")
            digest.update(_module_source(name))
            digest.update(b"\x00")
        salt = digest.hexdigest()
        _SALT_BY_VERSION[version] = salt
    return salt


def content_key(payload: object) -> str:
    """SHA-256 over (code salt, canonical payload JSON) as a hex string."""
    digest = hashlib.sha256()
    digest.update(code_salt().encode("ascii"))
    digest.update(b"\x00")
    digest.update(canonical_json(payload).encode("utf-8"))
    return digest.hexdigest()


def set_signature(
    pairs: "Iterable[Sequence[float]]",
) -> list[list[float]]:
    """Canonical signature of a ``(period, payload)`` multiset.

    Both schedulability criteria depend only on the multiset of
    ``(period, payload)`` pairs — never on construction order or station
    placement — so permutation-equivalent message sets must share cache
    entries.  The signature is the sorted list of pairs, floats kept
    exact (``canonical_json`` round-trips them through ``repr``).
    """
    return sorted([float(period), float(payload)] for period, payload in pairs)


def prefix_chain_seed(seed_payload: object):
    """The running digest every prefix key chain starts from.

    Covers the code salt and the caller's seed payload (analysis
    signature, schema tag) exactly like :func:`content_key`, so chained
    keys share the same invalidation behaviour.  The returned object is a
    ``hashlib`` digest; callers may ``.copy()`` intermediate states to
    branch a chain cheaply (the incremental admission engine resumes the
    base population's chain per candidate instead of re-hashing it).
    """
    digest = hashlib.sha256()
    digest.update(code_salt().encode("ascii"))
    digest.update(b"\x00")
    digest.update(canonical_json(seed_payload).encode("utf-8"))
    return digest


def prefix_chain_extend(digest, period: float, payload: float) -> str:
    """Fold one ``(period, payload)`` pair into a chain; the prefix's key.

    Mutates ``digest`` in place and returns the content key of the
    multiset consumed so far.  Floats are folded through ``repr`` (the
    same exactness contract as :func:`canonical_json`), with field and
    record separators so pair boundaries cannot alias.
    """
    digest.update(f"\x00{float(period)!r}\x1f{float(payload)!r}".encode("ascii"))
    return digest.hexdigest()


def chained_prefix_keys(
    seed_payload: object, sorted_pairs: "Sequence[Sequence[float]]"
) -> list[str]:
    """Content keys for every prefix of a canonically sorted pair multiset.

    ``sorted_pairs`` must already be in :func:`set_signature` order; key
    ``i`` then identifies the sub-multiset ``sorted_pairs[: i + 1]``
    (prefixes of the sorted order are themselves canonical — a sorted
    multiset and its sorted prefix sequence determine each other).  The
    digest is chained, so the whole key vector costs one running SHA-256
    instead of re-hashing ``O(n²)`` pairs; like :func:`content_key`, every
    key covers the code salt and the caller's seed payload, so
    permutation-equivalent prefixes collide exactly and nothing else does.
    """
    digest = prefix_chain_seed(seed_payload)
    return [
        prefix_chain_extend(digest, period, payload)
        for period, payload in sorted_pairs
    ]
