"""Online admission control for real-time token rings.

The schedulability criteria are static: they judge a complete message set.
A deployed network faces the *online* version — streams request admission
and depart over time, and each request must be answered against the
currently admitted population.  Section 2 of the paper sketches exactly
this use ("schedulability tests are not needed as long as the offered
load is below this bound"); this module turns that sketch into an API.

:class:`AdmissionController` wraps either protocol analysis and maintains
the admitted set.  Three admission policies:

* ``EXACT`` — run the full schedulability test on every request (most
  admissive, costs an exact-test evaluation).
* ``SUFFICIENT`` — run only the utilization-based sufficient bound of
  :mod:`repro.analysis.bounds` (cheapest; rejects some feasible sets).
* ``HYBRID`` — try the sufficient bound first and fall back to the exact
  test only when it rejects (exact admissivity at amortized bound cost —
  the run-time administration pattern the paper recommends).

Station assignment is handled by the controller (one stream per station,
as in the paper's model); releases free their stations for reuse.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

from repro.analysis.bounds import pdp_sufficient_test, ttp_sufficient_test
from repro.analysis.pdp import PDPAnalysis
from repro.analysis.ttp import TTPAnalysis
from repro.errors import ConfigurationError, MessageSetError
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream

__all__ = ["AdmissionPolicy", "AdmissionDecision", "AdmissionController"]


class AdmissionPolicy(enum.Enum):
    """How admission requests are tested."""

    EXACT = "exact"
    SUFFICIENT = "sufficient"
    HYBRID = "hybrid"


@dataclass(frozen=True)
class AdmissionDecision:
    """The controller's answer to one admission request.

    Attributes:
        admitted: whether the stream was accepted.
        stream_id: controller-assigned id (present iff admitted).
        station: ring station assigned (present iff admitted).
        reason: human-readable explanation for rejections.
        tested_by: which test decided ("sufficient" or "exact").
        utilization_after: admitted-set utilization had/has the stream
            been included.
    """

    admitted: bool
    stream_id: int | None
    station: int | None
    reason: str
    tested_by: str
    utilization_after: float


class AdmissionController:
    """Online admission control over one protocol analysis.

    Args:
        analysis: a :class:`PDPAnalysis` or :class:`TTPAnalysis`; the
            controller dispatches the matching sufficient bound.
        policy: the admission policy (default HYBRID).

    The controller is deliberately synchronous and in-memory: it models
    the decision logic, not a distributed signalling protocol.
    """

    def __init__(
        self,
        analysis: PDPAnalysis | TTPAnalysis,
        policy: AdmissionPolicy = AdmissionPolicy.HYBRID,
    ):
        if not isinstance(analysis, (PDPAnalysis, TTPAnalysis)):
            raise ConfigurationError(
                f"analysis must be a PDPAnalysis or TTPAnalysis, got {analysis!r}"
            )
        self._analysis = analysis
        self._policy = policy
        self._streams: dict[int, SynchronousStream] = {}
        self._ids = itertools.count(1)
        n = analysis.ring.n_stations
        self._free_stations: list[int] = list(range(n - 1, -1, -1))

    # -- views ---------------------------------------------------------------

    @property
    def analysis(self):
        """The wrapped protocol analysis."""
        return self._analysis

    @property
    def policy(self) -> AdmissionPolicy:
        """The admission policy in force."""
        return self._policy

    @property
    def admitted_count(self) -> int:
        """Number of currently admitted streams."""
        return len(self._streams)

    def current_set(self) -> MessageSet:
        """The admitted population as a message set."""
        return MessageSet(self._streams.values())

    def utilization(self) -> float:
        """Admitted utilization at the ring's bandwidth."""
        return self.current_set().utilization(self._analysis.ring.bandwidth_bps)

    # -- internals --------------------------------------------------------------

    def _sufficient_test(self, candidate: MessageSet) -> bool:
        if isinstance(self._analysis, PDPAnalysis):
            return pdp_sufficient_test(self._analysis, candidate).admitted
        return ttp_sufficient_test(self._analysis, candidate).admitted

    def _evaluate(self, candidate: MessageSet) -> tuple[bool, str]:
        """Returns (schedulable, which-test-decided)."""
        if self._policy is AdmissionPolicy.SUFFICIENT:
            return self._sufficient_test(candidate), "sufficient"
        if self._policy is AdmissionPolicy.EXACT:
            return self._analysis.is_schedulable(candidate), "exact"
        # HYBRID: cheap accept path, exact fallback.
        if self._sufficient_test(candidate):
            return True, "sufficient"
        return self._analysis.is_schedulable(candidate), "exact"

    # -- operations --------------------------------------------------------------

    def request(
        self, period_s: float, payload_bits: float
    ) -> AdmissionDecision:
        """Ask to admit a new periodic stream.

        On acceptance the stream is installed at a free station and its
        id returned; on rejection the admitted set is unchanged.
        """
        if not self._free_stations:
            return AdmissionDecision(
                admitted=False,
                stream_id=None,
                station=None,
                reason=f"all {self._analysis.ring.n_stations} stations occupied",
                tested_by="capacity",
                utilization_after=self.utilization(),
            )
        station = self._free_stations[-1]
        candidate_stream = SynchronousStream(
            period_s=period_s, payload_bits=payload_bits, station=station
        )
        candidate = MessageSet([*self._streams.values(), candidate_stream])
        bandwidth = self._analysis.ring.bandwidth_bps
        schedulable, tested_by = self._evaluate(candidate)
        if not schedulable:
            return AdmissionDecision(
                admitted=False,
                stream_id=None,
                station=None,
                reason="admission would make the set unschedulable",
                tested_by=tested_by,
                utilization_after=candidate.utilization(bandwidth),
            )
        self._free_stations.pop()
        stream_id = next(self._ids)
        self._streams[stream_id] = candidate_stream
        return AdmissionDecision(
            admitted=True,
            stream_id=stream_id,
            station=station,
            reason="admitted",
            tested_by=tested_by,
            utilization_after=candidate.utilization(bandwidth),
        )

    def release(self, stream_id: int) -> None:
        """Remove an admitted stream and free its station."""
        stream = self._streams.pop(stream_id, None)
        if stream is None:
            raise MessageSetError(f"unknown stream id: {stream_id!r}")
        self._free_stations.append(stream.station)

    def would_admit(self, period_s: float, payload_bits: float) -> bool:
        """Non-mutating what-if query (capacity plus schedulability)."""
        if not self._free_stations:
            return False
        station = self._free_stations[-1]
        candidate = MessageSet(
            [
                *self._streams.values(),
                SynchronousStream(
                    period_s=period_s, payload_bits=payload_bits, station=station
                ),
            ]
        )
        schedulable, __ = self._evaluate(candidate)
        return schedulable
