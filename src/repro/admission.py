"""Online admission control for real-time token rings.

The schedulability criteria are static: they judge a complete message set.
A deployed network faces the *online* version — streams request admission
and depart over time, and each request must be answered against the
currently admitted population.  Section 2 of the paper sketches exactly
this use ("schedulability tests are not needed as long as the offered
load is below this bound"); this module turns that sketch into an API.

:class:`AdmissionController` wraps either protocol analysis and maintains
the admitted set.  Three admission policies:

* ``EXACT`` — run the full schedulability test on every request (most
  admissive, costs an exact-test evaluation).
* ``SUFFICIENT`` — run only the utilization-based sufficient bound of
  :mod:`repro.analysis.bounds` (cheapest; rejects some feasible sets).
* ``HYBRID`` — try the sufficient bound first and fall back to the exact
  test only when it rejects (exact admissivity at amortized bound cost —
  the run-time administration pattern the paper recommends).

Station assignment is handled by the controller (one stream per station,
as in the paper's model); releases free their stations for reuse.

Concurrency contract (the admission *service* of :mod:`repro.service`
drives one controller from a batching dispatcher plus request handlers):

* every state transition — :meth:`AdmissionController.request`,
  :meth:`~AdmissionController.release`,
  :meth:`~AdmissionController.process_batch` — is atomic under one
  reentrant lock, so interleaved callers can never double-assign a
  station or corrupt the free list;
* releasing an unknown or already-released stream raises the typed
  :class:`~repro.errors.AdmissionError` (never silently re-frees a
  station); ``idempotent=True`` turns that into a recorded no-op for
  at-least-once retry paths;
* :meth:`~AdmissionController.process_batch` serializes a batch of
  operations in arrival order and answers each against exactly the state
  its predecessors left — decisions are **bit-identical** to issuing the
  same calls sequentially, while read-only runs of the batch are
  evaluated through one stacked
  :meth:`~repro.analysis.rm.ExactRMTest.is_schedulable_batch` pass.

Decisions can optionally be fronted by the content-addressed result
cache (:mod:`repro.cache`): pass ``cache_namespace`` and every computed
``(schedulable, tested_by)`` verdict is stored under a key covering the
analysis signature, policy, admitted population, and candidate — a
repeat query against the same population short-circuits both tests.
Cached verdicts are replayed values of the same computation, so results
stay bit-identical with the cache on, off, warm, or cold.
"""

from __future__ import annotations

import enum
import itertools
import threading
from dataclasses import dataclass

from repro.analysis.bounds import pdp_sufficient_test, ttp_sufficient_test
from repro.analysis.pdp import PDPAnalysis
from repro.analysis.ttp import TTPAnalysis
from repro.errors import AdmissionError, ConfigurationError, ReproError
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.obs import tracing

__all__ = [
    "AdmissionPolicy",
    "AdmissionDecision",
    "AdmissionOp",
    "ReleaseOutcome",
    "OpFault",
    "AdmissionController",
]


class AdmissionPolicy(enum.Enum):
    """How admission requests are tested."""

    EXACT = "exact"
    SUFFICIENT = "sufficient"
    HYBRID = "hybrid"


@dataclass(frozen=True)
class AdmissionDecision:
    """The controller's answer to one admission request.

    Attributes:
        admitted: whether the stream was (or, for a check, would be)
            accepted.
        stream_id: controller-assigned id (present iff a stream was
            actually installed — checks never carry one).
        station: ring station assigned, or the station a check's
            candidate would occupy (None on rejection).
        reason: human-readable explanation.
        tested_by: which test decided ("sufficient", "exact",
            "capacity", or "budget" — the utilization-cap lease gate of
            sharded deployments; see :mod:`repro.cluster`).
        utilization_after: admitted-set utilization had/has the stream
            been included.
    """

    admitted: bool
    stream_id: int | None
    station: int | None
    reason: str
    tested_by: str
    utilization_after: float


@dataclass(frozen=True)
class ReleaseOutcome:
    """The result of one release operation.

    ``released`` is False only in idempotent mode, recording that the
    stream was already gone (a retried release, or a typo the caller
    chose to tolerate).
    """

    released: bool
    stream_id: int


@dataclass(frozen=True)
class OpFault:
    """A batch operation that would have raised when issued directly.

    :meth:`AdmissionController.process_batch` must answer *every*
    operation, so instead of letting one malformed request poison the
    whole batch, the exception is captured here — ``error`` is the
    exception class name, ``detail`` its message.  The service layer maps
    these to 4xx responses.
    """

    error: str
    detail: str


@dataclass(frozen=True)
class AdmissionOp:
    """One operation in a :meth:`AdmissionController.process_batch` batch.

    Build with the :meth:`check`, :meth:`admit`, and :meth:`release`
    constructors rather than by hand.
    """

    kind: str
    period_s: float | None = None
    payload_bits: float | None = None
    stream_id: int | None = None
    idempotent: bool = False

    @staticmethod
    def check(period_s: float, payload_bits: float) -> "AdmissionOp":
        """A non-mutating what-if query."""
        return AdmissionOp("check", period_s=period_s, payload_bits=payload_bits)

    @staticmethod
    def admit(period_s: float, payload_bits: float) -> "AdmissionOp":
        """An admission request (installs the stream on acceptance)."""
        return AdmissionOp("admit", period_s=period_s, payload_bits=payload_bits)

    @staticmethod
    def release(stream_id: int, idempotent: bool = False) -> "AdmissionOp":
        """A release of a previously admitted stream."""
        return AdmissionOp("release", stream_id=stream_id, idempotent=idempotent)


class AdmissionController:
    """Online admission control over one protocol analysis.

    Args:
        analysis: a :class:`PDPAnalysis` or :class:`TTPAnalysis`; the
            controller dispatches the matching sufficient bound.
        policy: the admission policy (default HYBRID).
        cache_namespace: when set, front decisions with the
            content-addressed result cache under this namespace (the
            admission service passes ``"admission"``); None — the
            default — computes every decision.
        utilization_cap: when set, a hard admitted-utilization budget —
            any admission that would push the admitted set's utilization
            past it is rejected with ``tested_by="budget"`` *before* the
            schedulability test runs.  This is how a sharded fleet stays
            jointly sound: each worker enforces the lease granted by the
            cluster router (:mod:`repro.cluster.budget`), so the sum of
            per-shard admissions can never exceed the single-controller
            aggregate cap.  None (the default) disables the gate.

    Thread safety: all public operations are atomic under an internal
    reentrant lock (see the module docstring).  The controller models the
    decision logic, not a distributed signalling protocol.
    """

    def __init__(
        self,
        analysis: PDPAnalysis | TTPAnalysis,
        policy: AdmissionPolicy = AdmissionPolicy.HYBRID,
        *,
        cache_namespace: str | None = None,
        utilization_cap: float | None = None,
    ):
        if not isinstance(analysis, (PDPAnalysis, TTPAnalysis)):
            raise ConfigurationError(
                f"analysis must be a PDPAnalysis or TTPAnalysis, got {analysis!r}"
            )
        if utilization_cap is not None and not utilization_cap >= 0.0:
            raise ConfigurationError(
                f"utilization_cap must be >= 0, got {utilization_cap!r}"
            )
        self._analysis = analysis
        self._policy = policy
        self._utilization_cap = (
            float(utilization_cap) if utilization_cap is not None else None
        )
        self._streams: dict[int, SynchronousStream] = {}
        self._ids = itertools.count(1)
        self._lock = threading.RLock()
        n = analysis.ring.n_stations
        self._free_stations: list[int] = list(range(n - 1, -1, -1))
        self._cache_namespace = cache_namespace
        # An analysis without a canonical signature (e.g. a custom TTRT
        # policy object) cannot be content-addressed; fall back to
        # computing every decision rather than guessing a key.
        self._cache_signature = (
            analysis.cache_signature() if cache_namespace is not None else None
        )

    # -- views ---------------------------------------------------------------

    @property
    def analysis(self):
        """The wrapped protocol analysis."""
        return self._analysis

    @property
    def engine_name(self) -> str:
        """Which admission engine answers exact tests (see
        :mod:`repro.admission_incremental` for the alternative)."""
        return "scalar"

    @property
    def policy(self) -> AdmissionPolicy:
        """The admission policy in force."""
        return self._policy

    @property
    def admitted_count(self) -> int:
        """Number of currently admitted streams."""
        with self._lock:
            return len(self._streams)

    @property
    def utilization_cap(self) -> float | None:
        """The admitted-utilization budget in force (None = unbounded)."""
        with self._lock:
            return self._utilization_cap

    def set_utilization_cap(self, cap: float | None) -> float | None:
        """Install a new utilization budget, returning the previous one.

        The cluster router calls this (via the service's ``/v1/lease``
        endpoint) when it reconciles the fleet's budget split.  A cap
        below the *currently admitted* utilization is legal: existing
        streams keep running, but no further admission can succeed until
        releases bring utilization back under the lease.
        """
        if cap is not None and not cap >= 0.0:
            raise ConfigurationError(
                f"utilization_cap must be >= 0, got {cap!r}"
            )
        with self._lock:
            previous = self._utilization_cap
            self._utilization_cap = float(cap) if cap is not None else None
            return previous

    def current_set(self) -> MessageSet:
        """The admitted population as a message set."""
        with self._lock:
            return MessageSet(self._streams.values())

    def utilization(self) -> float:
        """Admitted utilization at the ring's bandwidth."""
        return self.current_set().utilization(self._analysis.ring.bandwidth_bps)

    # -- internals --------------------------------------------------------------

    def _sufficient_test(self, candidate: MessageSet) -> bool:
        if isinstance(self._analysis, PDPAnalysis):
            return pdp_sufficient_test(self._analysis, candidate).admitted
        return ttp_sufficient_test(self._analysis, candidate).admitted

    def _cache_key(self, base: list[SynchronousStream], candidate: SynchronousStream):
        """Content key for one decision, or None when caching is off.

        Stations are deliberately excluded: both criteria and both
        sufficient bounds depend only on the (period, payload) multiset,
        so keying on placements would shrink the hit rate for nothing.
        """
        if self._cache_signature is None:
            return None
        from repro.cache.keys import content_key, set_signature

        return content_key(
            {
                "admission": 1,
                "signature": self._cache_signature,
                "policy": self._policy.value,
                "base": set_signature(
                    (s.period_s, s.payload_bits) for s in base
                ),
                "candidate": [candidate.period_s, candidate.payload_bits],
            }
        )

    def _exact_verdicts(self, candidates: list[MessageSet]):
        """Exact-test verdicts, one per candidate set; the engine hook.

        The scalar engine delegates straight to the analysis's batched
        dispatch; :class:`~repro.admission_incremental
        .IncrementalAdmissionController` overrides this with the
        per-level snapshot evaluation.  Either way the caller treats the
        analysis as the oracle: a raising candidate must raise exactly
        the error the analysis would have raised.
        """
        return self._analysis.is_schedulable_many(candidates)

    def _evaluate_many(
        self, candidates: list[MessageSet], keys: list
    ) -> list[tuple[bool, str] | ReproError]:
        """(schedulable, which-test-decided) per candidate, or the error
        deciding it would have raised.  Read-only; lock held by callers.

        Exactly the sequential policy logic, vectorized: cache hits
        short-circuit, the sufficient bound screens HYBRID/SUFFICIENT,
        and every exact evaluation left over goes through one
        ``is_schedulable_many`` dispatch (stacked
        :meth:`ExactRMTest.is_schedulable_batch` rows for PDP candidates
        sharing a period vector).
        """
        from repro.cache.store import result_cache

        n = len(candidates)
        out: list[tuple[bool, str] | ReproError | None] = [None] * n
        cache = result_cache() if self._cache_namespace is not None else None
        with tracing.child_span(
            "engine", engine=self.engine_name, candidates=n
        ):
            with tracing.child_span(
                "cache", namespace=self._cache_namespace or "off"
            ):
                if cache is not None:
                    for i, key in enumerate(keys):
                        if key is None:
                            continue
                        hit = cache.get(key, namespace=self._cache_namespace)
                        if hit is not None:
                            out[i] = (bool(hit[0]), str(hit[1]))
            misses = [i for i in range(n) if out[i] is None]

            computed: dict[int, tuple[bool, str]] = {}
            if self._policy is not AdmissionPolicy.EXACT:
                with tracing.child_span("sufficient", candidates=len(misses)):
                    for i in misses:
                        if self._sufficient_test(candidates[i]):
                            computed[i] = (True, "sufficient")
                        elif self._policy is AdmissionPolicy.SUFFICIENT:
                            computed[i] = (False, "sufficient")
                misses = [i for i in misses if i not in computed]
            if misses:
                with tracing.child_span("exact", candidates=len(misses)):
                    try:
                        verdicts = self._exact_verdicts(
                            [candidates[i] for i in misses]
                        )
                        for i, ok in zip(misses, verdicts):
                            computed[i] = (bool(ok), "exact")
                    except ReproError:
                        # A degenerate candidate (e.g. TTP q_i < 2) aborts
                        # the batched call without naming the culprit;
                        # re-evaluate one by one so only the faulting
                        # candidates carry the error, exactly as
                        # sequential calls would.
                        for i in misses:
                            try:
                                ok = self._exact_verdicts([candidates[i]])[0]
                                computed[i] = (bool(ok), "exact")
                            except ReproError as exc:
                                out[i] = exc
            for i, value in computed.items():
                out[i] = value
                if cache is not None and keys[i] is not None:
                    cache.put(
                        keys[i], list(value), namespace=self._cache_namespace
                    )
        return out

    def _decide_many(
        self, requests: list[tuple[float, float]], faults: bool
    ) -> list[AdmissionDecision | OpFault]:
        """Full decisions for many what-if candidates, lock held.

        Read-only: every candidate is judged against the *same* current
        state, which is what makes the result bit-identical to deciding
        each request first in a sequential interleaving.  With
        ``faults=False`` (the direct-call API) an invalid request raises;
        with ``faults=True`` (the batch path) it yields an
        :class:`OpFault` so the rest of the batch still gets answers.
        """
        if not requests:
            return []
        n_stations = self._analysis.ring.n_stations
        if not self._free_stations:
            utilization = self.utilization()
            return [
                AdmissionDecision(
                    admitted=False,
                    stream_id=None,
                    station=None,
                    reason=f"all {n_stations} stations occupied",
                    tested_by="capacity",
                    utilization_after=utilization,
                )
                for _ in requests
            ]
        station = self._free_stations[-1]
        base = list(self._streams.values())
        bandwidth = self._analysis.ring.bandwidth_bps
        cap = self._utilization_cap

        decisions: list[AdmissionDecision | OpFault | None] = [None] * len(requests)
        candidates: list[MessageSet] = []
        keys: list = []
        positions: list[int] = []
        for j, (period_s, payload_bits) in enumerate(requests):
            try:
                stream = SynchronousStream(
                    period_s=period_s, payload_bits=payload_bits, station=station
                )
            except ReproError as exc:
                if not faults:
                    raise
                decisions[j] = OpFault(type(exc).__name__, str(exc))
                continue
            candidate = MessageSet([*base, stream])
            if cap is not None:
                # Budget gate: a lease overrun is rejected before (and
                # instead of) the schedulability test, and is never
                # cached — the verdict depends on the lease, not the
                # message set.  Bit-identity with a single-controller
                # twin holds because the twin applies the same gate to
                # the same float.
                utilization_after = candidate.utilization(bandwidth)
                if utilization_after > cap:
                    decisions[j] = AdmissionDecision(
                        admitted=False,
                        stream_id=None,
                        station=None,
                        reason=(
                            f"admission would raise utilization to "
                            f"{utilization_after:.6g}, past the budget "
                            f"lease cap {cap:.6g}"
                        ),
                        tested_by="budget",
                        utilization_after=utilization_after,
                    )
                    continue
            candidates.append(candidate)
            keys.append(self._cache_key(base, stream))
            positions.append(j)

        for j, candidate, verdict in zip(
            positions, candidates, self._evaluate_many(candidates, keys)
        ):
            if isinstance(verdict, ReproError):
                if not faults:
                    raise verdict
                decisions[j] = OpFault(type(verdict).__name__, str(verdict))
                continue
            schedulable, tested_by = verdict
            decisions[j] = AdmissionDecision(
                admitted=schedulable,
                stream_id=None,
                station=station if schedulable else None,
                reason=(
                    "schedulable"
                    if schedulable
                    else "admission would make the set unschedulable"
                ),
                tested_by=tested_by,
                utilization_after=candidate.utilization(bandwidth),
            )
        return decisions

    def _commit(
        self, period_s: float, payload_bits: float, decision: AdmissionDecision
    ) -> AdmissionDecision:
        """Install an accepted candidate; lock held, state unchanged since
        ``decision`` was computed."""
        station = self._free_stations.pop()
        stream_id = next(self._ids)
        self._streams[stream_id] = SynchronousStream(
            period_s=period_s, payload_bits=payload_bits, station=station
        )
        return AdmissionDecision(
            admitted=True,
            stream_id=stream_id,
            station=station,
            reason="admitted",
            tested_by=decision.tested_by,
            utilization_after=decision.utilization_after,
        )

    # -- operations --------------------------------------------------------------

    def check(self, period_s: float, payload_bits: float) -> AdmissionDecision:
        """Non-mutating what-if decision (capacity plus schedulability)."""
        with self._lock:
            return self._decide_many([(period_s, payload_bits)], faults=False)[0]

    def would_admit(self, period_s: float, payload_bits: float) -> bool:
        """Non-mutating what-if verdict; ``check(...).admitted``."""
        return self.check(period_s, payload_bits).admitted

    def request(
        self, period_s: float, payload_bits: float
    ) -> AdmissionDecision:
        """Ask to admit a new periodic stream.

        On acceptance the stream is installed at a free station and its
        id returned; on rejection the admitted set is unchanged.  Atomic:
        the decision and the installation happen under one lock.
        """
        with self._lock:
            decision = self._decide_many([(period_s, payload_bits)], faults=False)[0]
            if not decision.admitted:
                return decision
            return self._commit(period_s, payload_bits, decision)

    def release(self, stream_id: int, idempotent: bool = False) -> ReleaseOutcome:
        """Remove an admitted stream and free its station.

        Releasing an unknown or already-released id raises
        :class:`~repro.errors.AdmissionError` — never touching the free
        list, so a duplicate release cannot hand one station to two
        streams.  With ``idempotent=True`` (the service retry path) it
        instead returns ``ReleaseOutcome(released=False, ...)``.
        """
        with self._lock:
            stream = self._streams.pop(stream_id, None)
            if stream is None:
                if idempotent:
                    return ReleaseOutcome(released=False, stream_id=stream_id)
                raise AdmissionError(
                    f"unknown or already-released stream id: {stream_id!r}"
                )
            self._free_stations.append(stream.station)
            return ReleaseOutcome(released=True, stream_id=stream_id)

    def process_batch(
        self, ops: "list[AdmissionOp]"
    ) -> "list[AdmissionDecision | ReleaseOutcome | OpFault]":
        """Serialize a batch of operations, answering every one.

        Operations are applied in list order under one lock, and each is
        decided against exactly the state its predecessors left — the
        results are **bit-identical** to issuing the same calls
        sequentially (pinned by tests and the ``service_batch_equiv``
        fuzz property).  The speed-up comes from speculation: all
        check/admit candidates still pending are evaluated against the
        current state in one stacked pass, and those answers stay valid
        until some operation actually mutates state (a committed admit
        or a successful release), at which point the remainder of the
        batch is re-evaluated.  Check-heavy and saturated (all-rejecting)
        batches therefore collapse into a single batched exact-test
        evaluation.

        Operations that would have raised when issued directly come back
        as :class:`OpFault` instead, so one malformed request never
        poisons its batchmates.
        """
        results: dict[int, AdmissionDecision | ReleaseOutcome | OpFault] = {}
        with self._lock:
            pending = list(enumerate(ops))
            while pending:
                decisions: dict[int, AdmissionDecision | OpFault] = {}
                requests = [
                    (k, (op.period_s, op.payload_bits))
                    for k, (_, op) in enumerate(pending)
                    if op.kind in ("check", "admit")
                ]
                for (k, _), decision in zip(
                    requests,
                    self._decide_many([r for _, r in requests], faults=True),
                ):
                    decisions[k] = decision
                consumed = 0
                for k, (i, op) in enumerate(pending):
                    consumed = k + 1
                    if op.kind == "release":
                        try:
                            outcome = self.release(
                                op.stream_id, idempotent=op.idempotent
                            )
                        except AdmissionError as exc:
                            results[i] = OpFault(type(exc).__name__, str(exc))
                            continue
                        results[i] = outcome
                        if outcome.released:
                            break  # state changed: re-evaluate the rest
                        continue
                    if op.kind not in ("check", "admit"):
                        results[i] = OpFault(
                            "ServiceError", f"unknown operation kind {op.kind!r}"
                        )
                        continue
                    decision = decisions[k]
                    if (
                        isinstance(decision, OpFault)
                        or op.kind == "check"
                        or not decision.admitted
                    ):
                        results[i] = decision
                        continue
                    results[i] = self._commit(
                        op.period_s, op.payload_bits, decision
                    )
                    break  # state changed: re-evaluate the rest
                pending = pending[consumed:]
        return [results[i] for i in range(len(ops))]
