"""Unit conventions and conversion helpers.

The library uses one internal convention everywhere:

* time ............ seconds (``float``)
* data size ....... bits (``int`` or ``float``)
* bandwidth ....... bits per second (``float``)
* distance ........ meters (``float``)

The paper (and networking practice) quotes bandwidth in Mbps, periods in
milliseconds, payloads in bytes, and station latencies in bits.  The helpers
here perform those conversions explicitly so that call sites read like the
paper: ``mbps(100)``, ``milliseconds(100)``, ``bytes_to_bits(64)``.

Only trivial arithmetic lives here; keeping it in one module means a unit
mistake is a one-line fix rather than a scavenger hunt.
"""

from __future__ import annotations

__all__ = [
    "SPEED_OF_LIGHT",
    "bits",
    "bytes_to_bits",
    "bits_to_bytes",
    "kilobits",
    "megabits",
    "mbps",
    "gbps",
    "kbps",
    "bps_to_mbps",
    "seconds",
    "milliseconds",
    "microseconds",
    "nanoseconds",
    "seconds_to_ms",
    "seconds_to_us",
    "transmission_time",
    "propagation_delay",
    "meters",
    "kilometers",
]

#: Speed of light in vacuum, meters per second.
SPEED_OF_LIGHT = 299_792_458.0


# ---------------------------------------------------------------------------
# Data sizes
# ---------------------------------------------------------------------------

def bits(value: float) -> float:
    """Identity helper so call sites can be explicit about units."""
    return float(value)


def bytes_to_bits(value: float) -> float:
    """Convert a size in bytes to bits."""
    return float(value) * 8.0


def bits_to_bytes(value: float) -> float:
    """Convert a size in bits to bytes."""
    return float(value) / 8.0


def kilobits(value: float) -> float:
    """Convert kilobits (10^3 bits) to bits."""
    return float(value) * 1e3


def megabits(value: float) -> float:
    """Convert megabits (10^6 bits) to bits."""
    return float(value) * 1e6


# ---------------------------------------------------------------------------
# Bandwidth
# ---------------------------------------------------------------------------

def mbps(value: float) -> float:
    """Convert megabits per second to bits per second."""
    return float(value) * 1e6


def gbps(value: float) -> float:
    """Convert gigabits per second to bits per second."""
    return float(value) * 1e9


def kbps(value: float) -> float:
    """Convert kilobits per second to bits per second."""
    return float(value) * 1e3


def bps_to_mbps(value: float) -> float:
    """Convert bits per second to megabits per second (for reporting)."""
    return float(value) / 1e6


# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------

def seconds(value: float) -> float:
    """Identity helper so call sites can be explicit about units."""
    return float(value)


def milliseconds(value: float) -> float:
    """Convert milliseconds to seconds."""
    return float(value) * 1e-3


def microseconds(value: float) -> float:
    """Convert microseconds to seconds."""
    return float(value) * 1e-6


def nanoseconds(value: float) -> float:
    """Convert nanoseconds to seconds."""
    return float(value) * 1e-9


def seconds_to_ms(value: float) -> float:
    """Convert seconds to milliseconds (for reporting)."""
    return float(value) * 1e3


def seconds_to_us(value: float) -> float:
    """Convert seconds to microseconds (for reporting)."""
    return float(value) * 1e6


# ---------------------------------------------------------------------------
# Distance
# ---------------------------------------------------------------------------

def meters(value: float) -> float:
    """Identity helper so call sites can be explicit about units."""
    return float(value)


def kilometers(value: float) -> float:
    """Convert kilometers to meters."""
    return float(value) * 1e3


# ---------------------------------------------------------------------------
# Derived quantities
# ---------------------------------------------------------------------------

def transmission_time(size_bits: float, bandwidth_bps: float) -> float:
    """Time in seconds to clock ``size_bits`` onto a ``bandwidth_bps`` link.

    Raises ``ValueError`` for a non-positive bandwidth: a zero bandwidth is
    always a configuration bug, never a meaningful limit.
    """
    if bandwidth_bps <= 0.0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_bps!r}")
    if size_bits < 0.0:
        raise ValueError(f"size must be non-negative, got {size_bits!r}")
    return float(size_bits) / float(bandwidth_bps)


def propagation_delay(distance_m: float, velocity_factor: float = 1.0) -> float:
    """Signal propagation time in seconds over ``distance_m`` meters.

    ``velocity_factor`` is the fraction of the vacuum speed of light at
    which the signal travels (0.75 for the fiber/copper assumption used in
    the paper's Section 6.2).
    """
    if distance_m < 0.0:
        raise ValueError(f"distance must be non-negative, got {distance_m!r}")
    if not 0.0 < velocity_factor <= 1.0:
        raise ValueError(
            f"velocity factor must be in (0, 1], got {velocity_factor!r}"
        )
    return float(distance_m) / (SPEED_OF_LIGHT * float(velocity_factor))
