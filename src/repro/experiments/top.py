"""``runner top`` — a live terminal dashboard over ``/metrics``.

Polls a running admission service's JSON ``/metrics`` endpoint at a
fixed interval and renders the *rates* between consecutive snapshots:
requests/s, error/shed/429 rates, p50/p99 request latency (interpolated
from the latency histogram's bucket deltas), the admission-cache hit
ratio, and an ASCII batch-size distribution.  Everything is computed
client-side from two snapshots — the server needs no new state and the
dashboard works against any server version exposing the bucketed
histograms.

Modes:

* loop (default): clear-screen redraw every ``--interval`` seconds until
  ``--iterations`` frames (or ctrl-c);
* ``--once``: two snapshots one interval apart, one frame to stdout, no
  ANSI — scriptable (the verify smoke runs this);
* ``--spawn``: start an in-process server on an ephemeral port and drive
  a small seeded request burst between the snapshots, so the frame shows
  live traffic without an external service.
"""

from __future__ import annotations

import asyncio
import random
import threading
import time

from repro.errors import ServiceError
from repro.obs.metrics import bucket_quantile
from repro.service.client import ServiceClient
from repro.service.protocol import ServiceConfig

__all__ = ["TopSession", "SpawnedServer", "run_top"]

_CLEAR = "\x1b[2J\x1b[H"


def _value(snap: dict, name: str) -> float:
    return float(snap.get(name, {}).get("value", 0.0))


def _hist(snap: dict, name: str) -> dict | None:
    metric = snap.get(name)
    if not metric or metric.get("type") != "histogram":
        return None
    return metric


def _bucket_delta(curr: dict | None, prev: dict | None):
    """Non-cumulative bucket counts observed between two snapshots."""
    if curr is None or "buckets" not in curr:
        return None, None
    bounds = curr["buckets"]["bounds"]
    counts = list(curr["buckets"]["counts"])
    if prev is not None and prev.get("buckets", {}).get("bounds") == bounds:
        for index, count in enumerate(prev["buckets"]["counts"]):
            counts[index] -= count
    return bounds, counts


def _bar(count: float, peak: float, width: int = 24) -> str:
    if peak <= 0:
        return ""
    return "#" * max(1 if count else 0, round(width * count / peak))


class TopSession:
    """Snapshot differencing and frame rendering for one target server."""

    def __init__(self, client: ServiceClient):
        self._client = client
        self._prev: dict | None = None
        self._prev_t: float | None = None

    def sample(self) -> None:
        """Take the baseline snapshot (call once before :meth:`frame`)."""
        self._prev = self._client.metrics()["metrics"]
        self._prev_t = time.perf_counter()

    def frame(self) -> str:
        """Fetch a fresh snapshot and render the rates since the last one."""
        if self._prev is None:
            self.sample()
        health = self._client.healthz()
        curr = self._client.metrics()["metrics"]
        now = time.perf_counter()
        dt = max(now - (self._prev_t or now), 1e-9)
        prev = self._prev or {}
        self._prev, self._prev_t = curr, now

        def rate(name: str) -> float:
            return (_value(curr, name) - _value(prev, name)) / dt

        lines = [
            f"repro admission service  "
            f"{health['protocol']}/{health['policy']}  "
            f"engine={health['admission_engine']}  "
            f"status={health['status']}  "
            f"admitted={health['admitted']}  "
            f"queue={health['queue_depth']}",
            f"req/s {rate('service.http_requests'):9.1f}   "
            f"errors/s {rate('service.http_errors'):7.1f}   "
            f"shed/s {rate('service.shed'):7.1f}   "
            f"429/s {rate('service.rate_limited'):7.1f}",
        ]

        lat_bounds, lat_counts = _bucket_delta(
            _hist(curr, "service.request_latency_s"),
            _hist(prev, "service.request_latency_s"),
        )
        if lat_bounds is not None and sum(lat_counts) > 0:
            p50 = bucket_quantile(lat_bounds, lat_counts, 0.50)
            p99 = bucket_quantile(lat_bounds, lat_counts, 0.99)
            lines.append(
                f"latency   p50 {p50 * 1e3:7.3f} ms   p99 {p99 * 1e3:7.3f} ms"
                f"   ({sum(lat_counts)} obs)"
            )
        else:
            lines.append("latency   (no observations this interval)")

        hits = _value(curr, "cache.admission.hits") - _value(
            prev, "cache.admission.hits"
        )
        misses = _value(curr, "cache.admission.misses") - _value(
            prev, "cache.admission.misses"
        )
        total = hits + misses
        ratio = f"{hits / total:6.1%}" if total else "   n/a"
        lines.append(
            f"cache     hit {ratio}   "
            f"(hits {hits:.0f} / misses {misses:.0f})"
        )

        lines.append(
            f"traces    sampled/s {rate('trace.sampled'):7.1f}   "
            f"slow/s {rate('trace.slow'):7.1f}"
        )

        size_bounds, size_counts = _bucket_delta(
            _hist(curr, "service.batch_size"),
            _hist(prev, "service.batch_size"),
        )
        if size_bounds is not None and sum(size_counts) > 0:
            lines.append(
                f"batches   {rate('service.batches'):7.1f}/s   "
                "size distribution:"
            )
            peak = max(size_counts)
            labels = [f"<={b:g}" for b in size_bounds] + [
                f">{size_bounds[-1]:g}"
            ]
            for label, count in zip(labels, size_counts):
                if count:
                    lines.append(
                        f"  {label:>8} {_bar(count, peak)} {count:.0f}"
                    )
        else:
            lines.append("batches   (none this interval)")
        return "\n".join(lines)


class SpawnedServer:
    """An in-process :class:`AdmissionServer` on its own loop/thread.

    Context manager: ``__enter__`` returns once the socket is bound (the
    ephemeral port is in ``.port``); ``__exit__`` drains and joins.
    """

    def __init__(self, config: ServiceConfig):
        self._config = config
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self.port: int | None = None

    def __enter__(self) -> "SpawnedServer":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(10.0):
            raise ServiceError("spawned admission server failed to start")
        return self

    def __exit__(self, *exc_info) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10.0)

    def _run(self) -> None:
        from repro.service.server import AdmissionServer

        async def main():
            server = AdmissionServer(self._config)
            self._stop = asyncio.Event()
            self._loop = asyncio.get_running_loop()
            await server.start()
            self.port = server.port
            self._ready.set()
            await self._stop.wait()
            await server.drain_and_stop()

        asyncio.run(main())


def _seed_burst(client: ServiceClient, n: int, seed: int = 0) -> None:
    """A deterministic trickle of check/admit traffic for spawn mode."""
    rng = random.Random(seed)
    for index in range(n):
        period_s = rng.choice([0.008, 0.016, 0.032, 0.064])
        payload_bits = float(rng.randrange(64, 1024, 64))
        if index % 10 == 0:
            client.request(
                "POST",
                "/v1/admit",
                {"period_s": period_s, "payload_bits": payload_bits},
            )
        else:
            client.request(
                "POST",
                "/v1/check",
                {"period_s": period_s, "payload_bits": payload_bits},
            )


def run_top(
    host: str,
    port: int,
    *,
    interval_s: float = 2.0,
    iterations: int | None = None,
    once: bool = False,
    spawn_config: ServiceConfig | None = None,
    emit=print,
) -> int:
    """Run the dashboard; returns a process exit code.

    ``spawn_config`` switches on spawn mode (``host``/``port`` are then
    ignored and a seeded burst is issued each interval).  ``emit`` is the
    output sink, injectable for tests.
    """
    interval_s = max(interval_s, 0.05)

    def session_loop(client: ServiceClient) -> int:
        top = TopSession(client)
        top.sample()
        frames = 1 if once else iterations
        count = 0
        while frames is None or count < frames:
            if spawn_config is not None:
                _seed_burst(client, n=60, seed=count)
            time.sleep(interval_s)
            frame = top.frame()
            if once:
                emit(frame)
            else:
                emit(f"{_CLEAR}{frame}\n\n(interval {interval_s:g}s; ctrl-c to quit)")
            count += 1
        return 0

    try:
        if spawn_config is not None:
            with SpawnedServer(spawn_config) as spawned:
                with ServiceClient(
                    spawn_config.host, spawned.port, client_id="top"
                ) as client:
                    return session_loop(client)
        with ServiceClient(host, port, client_id="top") as client:
            return session_loop(client)
    except KeyboardInterrupt:
        return 0
