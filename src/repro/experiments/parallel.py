"""Process-parallel execution of experiment grids.

Every experiment in this reproduction is a grid of independent cells —
Figure 1 alone is 16 bandwidths × 3 protocols — and paired sampling makes
each cell self-seeding (``np.random.default_rng(params.seed)`` inside the
cell), so cells can run in any order on any worker and produce results
identical to the sequential loop.  :func:`parallel_map` exploits that: it
fans a list of picklable tasks across a :class:`ProcessPoolExecutor` and
returns results in task order.

The shared context (typically a
:class:`~repro.experiments.config.PaperParameters`) is shipped to each
worker once, through the pool initializer, rather than per task; within a
worker it persists across cells, so the parameter object's shared
exact-test structure cache keeps working there too.  ``PaperParameters``
drops its cache on pickling, so the payload stays small.

With ``jobs=1`` (the default) no pool is created at all — the tasks run
inline in the calling process, which preserves single-process profiling
and keeps the sequential path free of pickling constraints.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.errors import ConfigurationError

__all__ = ["parallel_map", "resolve_jobs"]

_S = TypeVar("_S")
_T = TypeVar("_T")
_R = TypeVar("_R")

#: Per-worker state installed by the pool initializer: the cell function
#: and the shared context, unpickled exactly once per worker process.
_WORKER_STATE: dict = {}


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: None -> 1, 0 -> all cores."""
    if jobs is None:
        return 1
    count = int(jobs)
    if count < 0:
        raise ConfigurationError(f"jobs must be non-negative, got {jobs!r}")
    if count == 0:
        return os.cpu_count() or 1
    return count


def _worker_init(fn: Callable, shared: object) -> None:
    _WORKER_STATE["fn"] = fn
    _WORKER_STATE["shared"] = shared


def _worker_call(task: object) -> object:
    return _WORKER_STATE["fn"](_WORKER_STATE["shared"], task)


def parallel_map(
    fn: "Callable[[_S, _T], _R]",
    tasks: "Iterable[_T]",
    *,
    shared: "_S" = None,
    jobs: int | None = 1,
) -> "list[_R]":
    """``[fn(shared, task) for task in tasks]``, optionally across processes.

    Args:
        fn: the cell function.  Must be a module-level callable when
            ``jobs > 1`` (workers import it by qualified name).
        tasks: picklable task descriptions, one per cell.
        shared: context passed as the first argument of every call; sent
            to each worker once via the pool initializer.
        jobs: worker processes; 1 runs inline, 0 means all cores.

    Results come back in task order regardless of completion order, so
    callers see exactly the sequential semantics.
    """
    task_list = list(tasks)
    n_jobs = resolve_jobs(jobs)
    if n_jobs <= 1 or len(task_list) <= 1:
        return [fn(shared, task) for task in task_list]
    with ProcessPoolExecutor(
        max_workers=min(n_jobs, len(task_list)),
        initializer=_worker_init,
        initargs=(fn, shared),
    ) as pool:
        return list(pool.map(_worker_call, task_list))
