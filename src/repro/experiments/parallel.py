"""Process-parallel execution of experiment grids.

Every experiment in this reproduction is a grid of independent cells —
Figure 1 alone is 16 bandwidths × 3 protocols — and paired sampling makes
each cell self-seeding (``np.random.default_rng(params.seed)`` inside the
cell), so cells can run in any order on any worker and produce results
identical to the sequential loop.  :func:`parallel_map` exploits that: it
fans a list of picklable tasks across a :class:`ProcessPoolExecutor` and
returns results in task order.

The shared context (typically a
:class:`~repro.experiments.config.PaperParameters`) is shipped to each
worker once, through the pool initializer, rather than per task; within a
worker it persists across cells, so the parameter object's shared
exact-test structure cache keeps working there too.  ``PaperParameters``
drops its cache on pickling, so the payload stays small.

With ``jobs=1`` (the default) no pool is created at all — the tasks run
inline in the calling process, which preserves single-process profiling
and keeps the sequential path free of pickling constraints.

Interrupts degrade gracefully: Ctrl-C — or a SIGTERM, which is routed
through ``KeyboardInterrupt`` while the pool is active — cancels the
cells that have not started, lets in-flight cells finish, merges the
finished cells' metric/span snapshots into the parent registries, and
re-raises, so the runner can still write a partial run manifest saying
exactly what completed.

Observability rides along transparently (and never changes results):

* each worker resets its process-global metrics registry and span
  recorder before a task, runs the cell, and ships the task's snapshots
  back with the result; the parent **merges** them, so the merged totals
  of any partitioning-invariant metric (probe counts, degenerate sets,
  per-cell spans) equal the single-process run's — the inline path needs
  no merging because cells update the parent registry directly;
* cell completions are logged live at INFO on the
  ``repro.experiments.parallel`` logger (enable with the runner's
  ``--log-level info``), in completion order for pools and in task order
  inline, so long grids show progress instead of minutes of silence.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Iterable, Sequence, TypeVar

from repro.errors import ConfigurationError
from repro.obs import logging as obslog
from repro.obs import metrics, timing

__all__ = ["parallel_map", "resolve_jobs", "assert_compact_tasks"]

_S = TypeVar("_S")
_T = TypeVar("_T")
_R = TypeVar("_R")

_LOG = obslog.get_logger("experiments.parallel")

#: Per-worker state installed by the pool initializer: the cell function
#: and the shared context, unpickled exactly once per worker process.
_WORKER_STATE: dict = {}


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: None -> 1, 0 -> all cores."""
    if jobs is None:
        return 1
    count = int(jobs)
    if count < 0:
        raise ConfigurationError(f"jobs must be non-negative, got {jobs!r}")
    if count == 0:
        return os.cpu_count() or 1
    return count


def assert_compact_tasks(tasks: "Sequence[object]") -> None:
    """Reject task lists that pickle stream-object payloads per worker.

    Every cell is self-seeding, so tasks should be compact specs — seeds,
    chunk indices, grid coordinates, array columns — never materialized
    :class:`~repro.messages.message_set.MessageSet` /
    :class:`~repro.messages.stream.SynchronousStream` collections, whose
    per-object pickling once dominated worker start-up at large stream
    counts.  Checks each task and one container level inside it; raises
    :class:`~repro.errors.ConfigurationError` on a violation.  Enforced
    by :func:`parallel_map` whenever a pool (and therefore pickling) is
    actually about to be used.
    """
    from repro.messages.message_set import MessageSet
    from repro.messages.stream import SynchronousStream
    from repro.messages.table import StreamTable

    heavy = (MessageSet, SynchronousStream)

    def _offending(value: object) -> str | None:
        if isinstance(value, heavy):
            return type(value).__name__
        if isinstance(value, StreamTable):
            # Columnar tables are exactly the compact form we want.
            return None
        if isinstance(value, (list, tuple, set, frozenset)):
            for item in value:
                if isinstance(item, heavy):
                    return type(item).__name__
        elif isinstance(value, dict):
            for item in value.values():
                if isinstance(item, heavy):
                    return type(item).__name__
        return None

    for index, task in enumerate(tasks):
        name = _offending(task)
        if name is not None:
            raise ConfigurationError(
                f"task {index} carries a {name}; ship a compact spec "
                "(seed, chunk index, columnar arrays) and rebuild the "
                "message sets inside the worker instead of pickling "
                "stream objects per task"
            )


def _worker_init(fn: Callable, shared: object) -> None:
    _WORKER_STATE["fn"] = fn
    _WORKER_STATE["shared"] = shared


def _worker_call(task: object) -> tuple:
    # Reset before (not after) the task: a forked worker inherits the
    # parent's accumulated metrics, which must not be double-counted when
    # this task's snapshot is merged back.
    metrics.registry().reset()
    timing.recorder().reset()
    result = _WORKER_STATE["fn"](_WORKER_STATE["shared"], task)
    return result, metrics.snapshot(), timing.snapshot()


def parallel_map(
    fn: "Callable[[_S, _T], _R]",
    tasks: "Iterable[_T]",
    *,
    shared: "_S" = None,
    jobs: int | None = 1,
    label: str | None = None,
) -> "list[_R]":
    """``[fn(shared, task) for task in tasks]``, optionally across processes.

    Args:
        fn: the cell function.  Must be a module-level callable when
            ``jobs > 1`` (workers import it by qualified name).
        tasks: picklable task descriptions, one per cell.
        shared: context passed as the first argument of every call; sent
            to each worker once via the pool initializer.
        jobs: worker processes; 1 runs inline, 0 means all cores.
        label: grid name used in progress log lines (defaults to the
            cell function's name).

    Results come back in task order regardless of completion order, so
    callers see exactly the sequential semantics.  Worker metrics and
    timing spans are merged into this process's global registries.
    """
    task_list = list(tasks)
    n_jobs = resolve_jobs(jobs)
    name = label or getattr(fn, "__name__", "cells")
    total = len(task_list)
    if n_jobs > 1 and total > 1 and (os.cpu_count() or 1) == 1:
        # A pool of workers on one core only adds fork/pickle overhead;
        # run inline (results are identical either way — see above).
        _LOG.info(
            "%s: single-core machine; running %d requested jobs inline",
            name,
            n_jobs,
            extra={"grid": name, "requested_jobs": n_jobs},
        )
        n_jobs = 1
    if n_jobs <= 1 or total <= 1:
        results = []
        for index, task in enumerate(task_list):
            started = time.perf_counter()
            results.append(fn(shared, task))
            _LOG.info(
                "%s: cell %d/%d done in %.2fs",
                name,
                index + 1,
                total,
                time.perf_counter() - started,
                extra={"grid": name, "done": index + 1, "total": total},
            )
        return results
    assert_compact_tasks(task_list)
    with ProcessPoolExecutor(
        max_workers=min(n_jobs, total),
        initializer=_worker_init,
        initargs=(fn, shared),
    ) as pool:
        futures = [pool.submit(_worker_call, task) for task in task_list]
        pending = set(futures)
        done_count = 0
        previous_term = _sigterm_as_interrupt()
        try:
            while pending:
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                done_count += len(finished)
                _LOG.info(
                    "%s: %d/%d cells done",
                    name,
                    done_count,
                    total,
                    extra={"grid": name, "done": done_count, "total": total},
                )
        except KeyboardInterrupt:
            # Graceful abort: drop what hasn't started, let in-flight
            # cells finish (a worker cannot be stopped mid-cell without
            # killing it), and keep the completed cells' observability so
            # the partial manifest still says what ran.
            cancelled = sum(1 for future in futures if future.cancel())
            _LOG.warning(
                "%s: interrupted with %d/%d cells done; cancelled %d queued",
                name,
                done_count,
                total,
                cancelled,
                extra={
                    "grid": name,
                    "done": done_count,
                    "total": total,
                    "cancelled": cancelled,
                },
            )
            _merge_completed(futures)
            raise
        finally:
            if previous_term is not None:
                signal.signal(signal.SIGTERM, previous_term)
        results = []
        for future in futures:
            result, metric_snap, span_snap = future.result()
            metrics.merge(metric_snap)
            timing.merge(span_snap)
            results.append(result)
        return results


def _sigterm_as_interrupt():
    """Route SIGTERM through KeyboardInterrupt while a pool is active.

    ``kill <runner pid>`` then takes the same graceful-abort path as
    Ctrl-C (cancel queued cells, merge finished snapshots, partial
    manifest).  Returns the previous handler, or None when one cannot be
    installed (non-main thread, unsupported platform) — callers restore
    it iff non-None.
    """
    if threading.current_thread() is not threading.main_thread():
        return None

    def _handler(signum, frame):
        raise KeyboardInterrupt

    try:
        return signal.signal(signal.SIGTERM, _handler)
    except (ValueError, OSError, AttributeError):  # pragma: no cover
        return None


def _merge_completed(futures) -> None:
    """Fold the snapshots of every successfully finished cell into the
    parent registries (used on the interrupt path, where only some
    futures have results)."""
    for future in futures:
        if future.done() and not future.cancelled() and future.exception() is None:
            _result, metric_snap, span_snap = future.result()
            metrics.merge(metric_snap)
            timing.merge(span_snap)
