"""Experiment harness: regenerate the paper's evaluation.

* :mod:`~repro.experiments.config` — the operating conditions of Section
  6.2 as one reusable parameter object.
* :mod:`~repro.experiments.figure1` — the bandwidth sweep of Figure 1.
* :mod:`~repro.experiments.sweeps` — the ablations the paper discusses but
  omits for space: TTRT sensitivity, frame-size trade-off, period
  distribution, SBA scheme comparison, ring size.
* :mod:`~repro.experiments.reporting` — ASCII tables/plots and CSV output.
* :mod:`~repro.experiments.runner` — command-line entry point
  (``python -m repro.experiments.runner``).
"""

from repro.experiments.config import PaperParameters
from repro.experiments.figure1 import Figure1Point, Figure1Result, run_figure1
from repro.experiments.sweeps import (
    frame_size_sweep,
    period_sweep,
    ring_size_sweep,
    sba_comparison,
    ttrt_sweep,
)
from repro.experiments.crossover import (
    CrossoverMap,
    CrossoverPoint,
    crossover_map,
)
from repro.experiments.sharpness import (
    SharpnessResult,
    SharpnessSample,
    sharpness_experiment,
)
from repro.experiments.throughput import (
    ThroughputPoint,
    ThroughputResult,
    throughput_experiment,
)

__all__ = [
    "PaperParameters",
    "Figure1Point",
    "Figure1Result",
    "run_figure1",
    "ttrt_sweep",
    "frame_size_sweep",
    "period_sweep",
    "sba_comparison",
    "ring_size_sweep",
    "ThroughputPoint",
    "ThroughputResult",
    "throughput_experiment",
    "CrossoverMap",
    "CrossoverPoint",
    "crossover_map",
    "SharpnessResult",
    "SharpnessSample",
    "sharpness_experiment",
]
