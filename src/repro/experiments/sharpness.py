"""Sharpness of the schedulability criteria: analysis vs empirical breakdown.

Theorems 4.1 and 5.1 are sufficient conditions — they may reject loads
the ring could actually carry.  This experiment measures how much: for
sampled workloads it bisects the *empirical* breakdown scale (the largest
payload scale that survives adversarial simulation without a deadline
miss) and compares it with the analytic breakdown scale.  The ratio

    ``sharpness = empirical scale / analytic scale``

is at least ~1 when the theorem is sound under the simulated conditions
and close to 1 when it is tight.  The paper never quantifies this; it is
the natural reviewer question about any sufficient schedulability test.

Caveats baked into the method:

* a simulation only exercises the phasings/horizons it runs, so the
  empirical scale is an *upper* bound on the true worst-case boundary —
  ratios slightly above 1 measure genuine slack plus unexplored
  adversarial room;
* the PDP simulator runs the analysis-matched ``AVERAGE`` token-walk
  model (Theorem 4.1 charges the expected ``Θ/2``), so the comparison
  isolates the analysis' frame-counting conservatism.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.breakdown import breakdown_scale
from repro.analysis.pdp import PDPVariant
from repro.errors import ConfigurationError
from repro.experiments.config import PaperParameters
from repro.experiments.reporting import format_table
from repro.sim.pdp_sim import PDPRingSimulator, PDPSimConfig, TokenWalkModel
from repro.sim.traffic import ArrivalPhasing
from repro.sim.ttp_sim import TTPRingSimulator, TTPSimConfig

__all__ = ["SharpnessSample", "SharpnessResult", "sharpness_experiment"]


@dataclass(frozen=True)
class SharpnessSample:
    """One workload's analytic-versus-empirical breakdown comparison."""

    protocol: str
    analytic_scale: float
    empirical_scale: float

    @property
    def ratio(self) -> float:
        """empirical / analytic; >= ~1 for a sound, tight criterion."""
        if self.analytic_scale <= 0:
            return float("inf")
        return self.empirical_scale / self.analytic_scale


@dataclass(frozen=True)
class SharpnessResult:
    """Sharpness samples for both protocols at one operating point."""

    bandwidth_mbps: float
    samples: tuple[SharpnessSample, ...]

    def ratios(self, protocol: str) -> list[float]:
        """All finite sharpness ratios for one protocol."""
        return [
            s.ratio
            for s in self.samples
            if s.protocol == protocol and np.isfinite(s.ratio)
        ]

    def to_table(self) -> str:
        """Summary table: per-protocol mean/min/max sharpness."""
        rows = []
        for protocol in ("modified-802.5", "fddi"):
            ratios = self.ratios(protocol)
            if not ratios:
                continue
            rows.append(
                [
                    protocol,
                    len(ratios),
                    float(np.mean(ratios)),
                    float(np.min(ratios)),
                    float(np.max(ratios)),
                ]
            )
        return format_table(
            ["protocol", "sets", "mean ratio", "min", "max"], rows
        )


def _empirical_scale(
    run_miss_free,
    analytic_scale: float,
    rel_tol: float,
) -> float:
    """Bisect the largest payload scale that simulates miss-free.

    Brackets around the analytic scale: the criterion being sufficient
    means the empirical boundary sits at or above it.
    """
    lo = analytic_scale
    if not run_miss_free(lo):
        # The simulated environment is harsher than the analysis modelled
        # (should not happen for matched models; treat as boundary at lo).
        hi = lo
        lo = lo / 2.0
        while lo > 1e-12 and not run_miss_free(lo):
            hi, lo = lo, lo / 2.0
        if lo <= 1e-12:
            return 0.0
    else:
        hi = lo * 2.0
        while run_miss_free(hi):
            lo, hi = hi, hi * 2.0
            if hi > analytic_scale * 64:
                return hi  # absurdly large margin; stop chasing it
    while hi - lo > rel_tol * hi:
        mid = (lo + hi) / 2.0
        if run_miss_free(mid):
            lo = mid
        else:
            hi = mid
    return lo


def sharpness_experiment(
    parameters: PaperParameters,
    bandwidth_mbps: float = 16.0,
    n_sets: int = 5,
    duration_periods: float = 3.0,
    rel_tol: float = 0.02,
    seed: int = 0,
) -> SharpnessResult:
    """Measure criterion sharpness for both protocols.

    Workload sizes follow ``parameters``; each sampled set contributes
    one sample per protocol (skipped when its analytic breakdown is
    degenerate at this bandwidth).
    """
    if n_sets < 1:
        raise ConfigurationError(f"need at least one set, got {n_sets!r}")
    sampler = parameters.sampler()
    rng = np.random.default_rng(seed)
    frame = parameters.frame_format()
    samples: list[SharpnessSample] = []

    for message_set in sampler.sample_many(rng, n_sets):
        duration = duration_periods * message_set.max_period

        # --- modified 802.5 -------------------------------------------------
        pdp = parameters.pdp_analysis(bandwidth_mbps, PDPVariant.MODIFIED)
        analytic, __ = breakdown_scale(message_set, pdp, rel_tol=1e-3)
        if 0.0 < analytic < float("inf"):

            def pdp_miss_free(scale: float) -> bool:
                simulator = PDPRingSimulator(
                    pdp.ring,
                    frame,
                    message_set.scaled(scale),
                    PDPSimConfig(
                        variant=PDPVariant.MODIFIED,
                        phasing=ArrivalPhasing.SIMULTANEOUS,
                        token_walk=TokenWalkModel.AVERAGE,
                    ),
                )
                return simulator.run(duration).deadline_safe

            empirical = _empirical_scale(pdp_miss_free, analytic, rel_tol)
            samples.append(
                SharpnessSample("modified-802.5", analytic, empirical)
            )

        # --- fddi --------------------------------------------------------------
        ttp = parameters.ttp_analysis(bandwidth_mbps)
        ttp_analytic = ttp.saturation_scale(message_set)
        if 0.0 < ttp_analytic < float("inf"):

            def ttp_miss_free(scale: float) -> bool:
                scaled = message_set.scaled(scale)
                try:
                    allocation = ttp.allocate(scaled)
                except Exception:
                    return False
                simulator = TTPRingSimulator(
                    ttp.ring, frame, scaled, allocation,
                    TTPSimConfig(track_rotations=False),
                )
                return simulator.run(duration).deadline_safe

            empirical = _empirical_scale(ttp_miss_free, ttp_analytic, rel_tol)
            samples.append(SharpnessSample("fddi", ttp_analytic, empirical))

    return SharpnessResult(
        bandwidth_mbps=bandwidth_mbps, samples=tuple(samples)
    )
