"""Direct admission-engine canary: ``BENCH_admission.json``.

``runner bench-admission`` (``make bench-admission``) measures the
admission controller itself — no HTTP, no batcher — over the four
regimes the incremental engine was built for:

========================  ====================================================
``check_heavy``           the serving steady state: 90% non-mutating checks
                          against a stable admitted population, 5% admits,
                          5% releases
``churn_heavy``           an adversarial mix: 40% admits / 30% releases /
                          30% checks, so the base set mutates constantly and
                          per-level snapshots are invalidated at every turn
``cold`` vs ``warm``      each mix runs twice: once against a cleared
                          content-addressed result cache, then again on a
                          fresh controller with the cache retained — the
                          warm pass must *hit* (the keys are canonical set
                          signatures, so controller identity cannot matter)
========================  ====================================================

Every cell runs under both engines (``scalar`` and ``incremental``) on
the **same** deterministic op sequence, so the document doubles as a
coarse equivalence check: the decision tallies per cell must match
engine-for-engine (asserted here — a mismatch fails the canary rather
than writing a wrong-but-green document).

The output uses the summarized-canary schema
(:data:`~repro.obs.benchjson.BENCH_SCHEMA_VERSION`): one benchmark entry
per (engine, mix, phase) cell with per-op latency statistics in
``stats`` and the cache / incremental-engine counter deltas in
``extra_info``.  ``tools/verify_smoke.py`` guards the warm cells'
hit ratio and compares means against the committed baseline.
"""

from __future__ import annotations

import datetime
import platform
import random
import statistics
import time

import numpy as np

from repro import cache as result_cache
from repro.admission import AdmissionPolicy
from repro.admission_incremental import build_admission_controller
from repro.analysis.pdp import PDPAnalysis, PDPVariant
from repro.errors import ReproError
from repro.network.standards import ieee_802_5_ring, paper_frame_format
from repro.obs import metrics
from repro.obs.benchjson import BENCH_SCHEMA_VERSION, cpu_info
from repro.units import mbps

__all__ = ["MIXES", "run_admission_bench"]

#: ``mix -> (admit_fraction, release_fraction)``; the remainder is checks.
MIXES: dict[str, tuple[float, float]] = {
    "check_heavy": (0.05, 0.05),
    "churn_heavy": (0.40, 0.30),
}

#: Cache namespace for the canary (isolated from the serving namespace so
#: a bench run cannot pre-warm or poison service measurements).
_NAMESPACE = "admission-bench"

#: Counter families whose per-cell deltas land in ``extra_info``.
_COUNTER_PREFIXES = (f"cache.{_NAMESPACE}.", "admission.incremental.")


def _catalogue(seed: int, size: int = 32) -> list[tuple[float, float]]:
    """Seeded candidate pool (the loadgen catalogue shape)."""
    rng = random.Random(seed)
    return [
        (
            rng.choice([0.008, 0.016, 0.032, 0.064, 0.128, 0.256]),
            float(rng.randrange(64, 2048, 64)),
        )
        for _ in range(size)
    ]


def _op_sequence(mix: str, seed: int, n_ops: int) -> list[tuple]:
    """One deterministic op list, replayed identically by every cell.

    Releases carry an index resolved against the admitted-id list at
    execution time; because both engines decide identically, the
    resolved ids match across engines too.
    """
    admit_fraction, release_fraction = MIXES[mix]
    rng = random.Random(seed)
    catalogue = _catalogue(seed)
    ops: list[tuple] = []
    for _ in range(n_ops):
        roll = rng.random()
        period_s, payload_bits = rng.choice(catalogue)
        if roll < release_fraction:
            ops.append(("release", rng.randrange(1 << 30)))
        elif roll < release_fraction + admit_fraction:
            ops.append(("admit", period_s, payload_bits))
        else:
            ops.append(("check", period_s, payload_bits))
    return ops


def _build(engine: str):
    analysis = PDPAnalysis(
        ieee_802_5_ring(mbps(16.0), n_stations=40),
        paper_frame_format(),
        PDPVariant.MODIFIED,
        cache_size=128,
    )
    return build_admission_controller(
        analysis,
        AdmissionPolicy.EXACT,
        cache_namespace=_NAMESPACE,
        engine=engine,
    )


def _counter_values() -> dict[str, float]:
    return {
        name: float(snap.get("value", 0.0))
        for name, snap in metrics.snapshot(prefix=_COUNTER_PREFIXES).items()
        if "value" in snap
    }


def _run_cell(engine: str, ops: list[tuple]) -> tuple[list[float], dict]:
    """Replay one op sequence; per-op latencies plus the decision tally."""
    controller = _build(engine)
    admitted_ids: list[int] = []
    samples: list[float] = []
    tally = {"admitted": 0, "rejected": 0, "released": 0, "checks_true": 0}
    for op in ops:
        started = time.perf_counter()
        if op[0] == "check":
            decision = controller.check(op[1], op[2])
            tally["checks_true"] += decision.admitted
        elif op[0] == "admit":
            decision = controller.request(op[1], op[2])
            if decision.admitted:
                tally["admitted"] += 1
                admitted_ids.append(decision.stream_id)
            else:
                tally["rejected"] += 1
        elif admitted_ids:
            stream_id = admitted_ids.pop(op[1] % len(admitted_ids))
            outcome = controller.release(stream_id, idempotent=True)
            tally["released"] += outcome.released
        samples.append(time.perf_counter() - started)
    return samples, tally


def _stats(samples: list[float]) -> dict:
    arr = np.asarray(samples, dtype=float)
    q1, median, q3 = (float(x) for x in np.percentile(arr, [25.0, 50.0, 75.0]))
    total = float(arr.sum())
    return {
        "min": float(arr.min()),
        "max": float(arr.max()),
        "mean": float(arr.mean()),
        "stddev": float(statistics.pstdev(samples)),
        "median": median,
        "iqr": q3 - q1,
        "q1": q1,
        "q3": q3,
        "ops": len(samples) / total if total > 0 else None,
        "total": total,
        "rounds": len(samples),
        "iterations": 1,
    }


def run_admission_bench(seed: int, *, n_ops: int = 400) -> dict:
    """The full canary document (``BENCH_admission.json`` content).

    For each mix, each engine replays the same op sequence twice — cold
    (result cache cleared) then warm (cache retained, fresh controller).
    Decision tallies are cross-checked between engines per cell; a
    divergence raises :class:`~repro.errors.ReproError` instead of
    emitting a document that benchmarks two different computations.
    """
    benchmarks = []
    for mix in MIXES:
        ops = _op_sequence(mix, seed, n_ops)
        tallies: dict[tuple[str, str], dict] = {}
        for engine in ("scalar", "incremental"):
            result_cache.clear()
            for phase in ("cold", "warm"):
                before = _counter_values()
                samples, tally = _run_cell(engine, ops)
                deltas = {
                    name: value - before.get(name, 0.0)
                    for name, value in _counter_values().items()
                    if value != before.get(name, 0.0)
                }
                tallies[(phase, engine)] = tally
                hits = deltas.get(f"cache.{_NAMESPACE}.hits", 0.0)
                misses = deltas.get(f"cache.{_NAMESPACE}.misses", 0.0)
                lookups = hits + misses
                benchmarks.append(
                    {
                        "group": "admission",
                        "name": f"{mix}_{phase}_{engine}",
                        "fullname": (
                            "repro.experiments.admission_bench::"
                            f"{mix}_{phase}_{engine}"
                        ),
                        "params": {
                            "mix": mix,
                            "phase": phase,
                            "engine": engine,
                            "n_ops": n_ops,
                            "seed": seed,
                        },
                        "extra_info": {
                            "tally": tally,
                            "counters": deltas,
                            "cache_hit_ratio": (
                                hits / lookups if lookups else None
                            ),
                        },
                        "stats": _stats(samples),
                    }
                )
        for phase in ("cold", "warm"):
            if tallies[(phase, "scalar")] != tallies[(phase, "incremental")]:
                raise ReproError(
                    f"engine divergence in {mix}/{phase}: "
                    f"scalar={tallies[(phase, 'scalar')]} "
                    f"incremental={tallies[(phase, 'incremental')]}"
                )
    uname = platform.uname()
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "datetime": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "pytest_benchmark_version": None,
        "commit_info": None,
        "machine": {
            "node": uname.node,
            "machine": uname.machine,
            "system": uname.system,
            "release": uname.release,
            "python_version": platform.python_version(),
            "cpu": cpu_info(arch=uname.machine),
        },
        "benchmarks": benchmarks,
    }
