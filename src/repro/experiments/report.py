"""One-shot markdown report over the full experiment suite.

``python -m repro.experiments.runner report --out report.md`` runs every
experiment at the configured scale and writes a self-contained markdown
record — the programmatic version of EXPERIMENTS.md, so a user on
different hardware (or after modifying the library) can regenerate the
whole evidence base with one command.
"""

from __future__ import annotations

import io
import time

from repro.experiments.config import PaperParameters
from repro.experiments.crossover import crossover_map
from repro.experiments.figure1 import run_figure1
from repro.experiments.sweeps import (
    frame_size_sweep,
    period_sweep,
    ring_size_sweep,
    sba_comparison,
    ttrt_sweep,
)
from repro.experiments.throughput import throughput_experiment

__all__ = ["generate_report"]


def _markdown_table(headers, rows) -> str:
    """Render rows as a GitHub-style markdown table."""
    def cell(value) -> str:
        if isinstance(value, float):
            return f"{value:.4f}"
        return str(value)

    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(cell(c) for c in row) + " |")
    return "\n".join(lines)


def generate_report(
    parameters: PaperParameters | None = None,
    title: str = "Experiment report",
) -> str:
    """Run every experiment and return the markdown report text."""
    params = parameters if parameters is not None else PaperParameters()
    out = io.StringIO()
    started = time.perf_counter()

    out.write(f"# {title}\n\n")
    out.write(
        f"Configuration: n={params.n_stations} stations, "
        f"{params.monte_carlo_sets} Monte Carlo sets, "
        f"mean period {params.mean_period_s * 1e3:.0f} ms, "
        f"period ratio {params.period_ratio:g}, "
        f"frame {params.frame_payload_bytes:.0f} B payload / "
        f"{params.frame_overhead_bits:.0f} b overhead, "
        f"seed {params.seed}.\n\n"
    )

    # --- Figure 1 ------------------------------------------------------------
    figure1 = run_figure1(params)
    out.write("## Figure 1 — average breakdown utilization vs bandwidth\n\n")
    out.write(
        _markdown_table(
            ["BW (Mbps)", "IEEE 802.5", "Mod 802.5", "FDDI"],
            [row[:4] for row in figure1.rows()],
        )
    )
    out.write("\n\nShape checks:\n\n")
    for check, passed in figure1.shape_report().items():
        out.write(f"- {'PASS' if passed else 'FAIL'} — {check}\n")
    crossover = figure1.crossover_bandwidth()
    out.write(f"\nCrossover bandwidth: {crossover} Mbps\n\n")

    # --- sweeps ---------------------------------------------------------------
    for heading, sweep in (
        ("TTRT sensitivity @ 10 Mbps", ttrt_sweep(params, 10.0)),
        ("Frame-size trade-off @ 10 Mbps", frame_size_sweep(params, 10.0)),
        ("Period robustness @ 4 Mbps", period_sweep(params, 4.0)),
        ("SBA scheme comparison @ 100 Mbps", sba_comparison(params, 100.0)),
        ("Ring-size sensitivity @ 25 Mbps", ring_size_sweep(params, 25.0)),
    ):
        out.write(f"## {heading}\n\n")
        out.write(_markdown_table(sweep.headers, sweep.rows))
        out.write("\n\n")

    # --- throughput -------------------------------------------------------------
    throughput = throughput_experiment(params)
    out.write("## Throughput division (sync at half breakdown)\n\n")
    out.write(
        _markdown_table(
            ["protocol", "BW (Mbps)", "sync", "async", "overhead", "misses"],
            [
                [
                    p.protocol,
                    p.bandwidth_mbps,
                    p.sync_utilization,
                    p.async_utilization,
                    p.overhead_fraction,
                    p.deadline_misses,
                ]
                for p in throughput.points
            ],
        )
    )
    out.write("\n\n")

    # --- crossover frontier --------------------------------------------------------
    counts = (5, 10, 20) if params.n_stations <= 20 else (10, 25, 50, 100)
    frontier = crossover_map(params, station_counts=counts)
    out.write("## Crossover frontier (ring size -> handover bandwidth)\n\n")
    out.write(
        _markdown_table(
            ["stations", "crossover (Mbps)", "PDP there", "TTP there"],
            [
                [
                    p.n_stations,
                    p.crossover_mbps if p.crossover_mbps is not None else "none",
                    p.pdp_at_crossover,
                    p.ttp_at_crossover,
                ]
                for p in frontier.points
            ],
        )
    )

    elapsed = time.perf_counter() - started
    out.write(f"\n\n---\nGenerated in {elapsed:.1f}s.\n")
    return out.getvalue()
