"""Command-line experiment runner.

Usage::

    python -m repro.experiments.runner figure1 [--fast] [--csv out.csv] [--jobs N]
    python -m repro.experiments.runner ttrt --bandwidth 100
    python -m repro.experiments.runner frames --bandwidth 10
    python -m repro.experiments.runner periods --bandwidth 10
    python -m repro.experiments.runner sba --bandwidth 100
    python -m repro.experiments.runner ringsize --bandwidth 100
    python -m repro.experiments.runner throughput
    python -m repro.experiments.runner crossover
    python -m repro.experiments.runner all --fast
    python -m repro.experiments.runner fuzz --fuzz-cases 60 --mutation-smoke
    python -m repro.experiments.runner serve --port 8711 --policy exact
    python -m repro.experiments.runner loadgen --spawn --duration 5 [--churn]
    python -m repro.experiments.runner loadgen --workers 4 --duration 5
    python -m repro.experiments.runner cluster --workers 4 --route-policy hash
    python -m repro.experiments.runner bench-cluster --duration 4
    python -m repro.experiments.runner top --port 8711 --interval 2
    python -m repro.experiments.runner bench-admission
    python -m repro.experiments.runner loss-sweep --fast [--recovery-time 1e-3]

``serve`` runs the admission-control service of :mod:`repro.service`
(USAGE.md §14) until SIGTERM/ctrl-c, then drains gracefully; ``loadgen``
drives a running server (or spawns one in-process on an ephemeral port
with ``--spawn``) and writes the latency/throughput canary
``BENCH_service.json`` (plus, with ``--latency-csv``, every measured
latency with its server-side trace id).  ``top`` is the live telemetry
dashboard over ``/metrics`` (USAGE.md §16).  ``cluster`` runs the
sharded admission cluster of :mod:`repro.cluster` (USAGE.md §19) — a
prefork worker pool behind a consistent-hash router — until
SIGTERM/ctrl-c; ``loadgen --workers N`` spawns such a cluster and
drives load through its router (per-shard latency split included);
``bench-cluster`` measures fleet throughput at several worker counts
and writes ``BENCH_cluster.json``.  All record a session
summary in the run manifest.  An interrupted run — any experiment — still writes its
manifest, flagged ``extra.interrupted``, and exits 130.

The ``fuzz`` experiment runs the differential verification harness
(:mod:`repro.verify`): a seeded, deterministic campaign that pits the
theorems against the simulators and the scalar against the batched
implementations.  ``--mutation-smoke`` additionally injects deliberate
off-by-one bugs and requires the harness to flag every one; the exit
code is nonzero on any violation or missed mutant.  Counterexamples are
shrunk and written as replayable repro files under ``--repro-dir``.

``--fast`` shrinks the ring to 20 stations and the Monte Carlo count to
10 sets, which turns the full-figure run from minutes into seconds while
preserving every qualitative shape.

``--jobs N`` fans the independent grid cells of an experiment across N
worker processes (0 = all cores).  Each cell reseeds from the base seed,
so the output is bit-identical for every ``--jobs`` value.  On a
single-core machine the cells run inline regardless of ``N`` — a worker
pool there only adds fork/pickle overhead.

``--sim-engine {scalar,fast,auto}`` pins the simulator implementation
and ``--cache-dir DIR`` persists the content-addressed result cache
across runs; both are documented in USAGE.md §13.  Cache traffic shows
up as ``cache.*`` metrics in the manifest.  ``--admission-engine
{scalar,incremental,auto}`` pins the admission engine the same way
(USAGE.md §15); ``bench-admission`` measures both engines head to head
(cold vs warm cache, check-heavy vs churn-heavy mixes) and writes the
``BENCH_admission.json`` canary.

``loss-sweep`` estimates average breakdown utilization for both
protocols under the retransmission-aware criteria of
:mod:`repro.faults.analysis` across a range of medium loss fractions,
prints the breakdown-versus-loss figure, and writes the
``BENCH_loss.json`` canary (USAGE.md §17).  ``--loss-fractions`` takes a
comma-separated list, ``--recovery-time`` the charged token
claim/recovery latency in seconds.

Observability (see :mod:`repro.obs` and docs/USAGE.md §11):

* ``--log-level info`` streams live progress (per-cell completions) to
  stderr; ``--log-json run.jsonl`` appends every record, including the
  human-facing output, to a machine-readable JSONL file.
* ``--quiet`` suppresses stdout; combined with ``--log-json`` the run is
  silent but fully recorded.
* Every invocation writes a ``manifest.json`` (next to the CSV when one
  is requested, in the working directory otherwise) capturing the seed,
  parameters, CLI arguments, git SHA, environment, wall time, and the
  final metrics/timing-span snapshots — enough to regenerate and audit
  every plotted point.  ``--manifest PATH`` overrides the location;
  ``--no-manifest`` disables it.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import time

from repro.experiments.config import PaperParameters
from repro.experiments.crossover import crossover_map
from repro.experiments.parallel import _sigterm_as_interrupt
from repro.experiments.figure1 import Figure1Result, run_figure1
from repro.experiments.reporting import write_csv
from repro.experiments.sweeps import (
    frame_size_sweep,
    period_sweep,
    ring_size_sweep,
    sba_comparison,
    ttrt_sweep,
)
from repro.experiments.throughput import throughput_experiment
from repro.obs import logging as obslog
from repro.obs import manifest as obsmanifest
from repro.obs import metrics, timing
from repro.obs.logging import console

__all__ = ["main", "build_parameters", "resolve_manifest_path"]


def build_parameters(fast: bool, sets: int | None, stations: int | None) -> PaperParameters:
    """Assemble parameters from CLI flags."""
    params = PaperParameters()
    if fast:
        params = params.scaled_down(n_stations=20, monte_carlo_sets=10)
    if stations is not None:
        params = params.scaled_down(stations, params.monte_carlo_sets)
    if sets is not None:
        params = params.scaled_down(params.n_stations, sets)
    return params


def resolve_manifest_path(args: argparse.Namespace) -> str | None:
    """Where this invocation's manifest goes.

    ``--no-manifest`` disables it; ``--manifest PATH`` pins it; otherwise
    it lands next to the CSV artifact when one is requested, else in the
    working directory as ``manifest.json``.
    """
    if args.no_manifest:
        return None
    if args.manifest:
        return args.manifest
    if args.csv:
        return os.path.join(os.path.dirname(args.csv) or ".", "manifest.json")
    return "manifest.json"


def _run_figure1(args: argparse.Namespace, params: PaperParameters) -> list[str]:
    result = run_figure1(params, jobs=args.jobs)
    console(result.to_table())
    console()
    console(result.to_ascii_plot())
    console("shape checks:")
    for check, passed in result.shape_report().items():
        console(f"  {'PASS' if passed else 'FAIL'}  {check}")
    crossover = result.crossover_bandwidth()
    console(f"crossover bandwidth: {crossover} Mbps")
    if args.csv:
        write_csv(args.csv, Figure1Result.CSV_HEADERS, result.rows())
        console(f"wrote {args.csv}")
        return [args.csv]
    return []


def _run_sweep(sweep_result) -> None:
    console(sweep_result.name)
    console(sweep_result.to_table())


def _service_config(args: argparse.Namespace, *, port: int | None = None):
    from repro.service.protocol import ServiceConfig

    return ServiceConfig(
        host=args.host,
        port=args.port if port is None else port,
        protocol=args.service_protocol,
        variant=args.variant,
        bandwidth_mbps=args.bandwidth,
        n_stations=args.stations if args.stations is not None else 40,
        policy=args.policy,
        admission_engine=args.admission_engine,
        batch_window_s=args.batch_window,
        batch_max=args.batch_max,
        queue_limit=args.queue_limit,
        rate_limit_rps=args.rate_limit,
        trace_sample_rate=args.trace_sample,
        trace_buffer=args.trace_buffer,
        trace_jsonl=args.trace_jsonl,
        slow_trace_s=args.slow_trace,
    )


def _run_serve(args: argparse.Namespace, manifest_extra: dict) -> list[str]:
    import asyncio

    from repro.service.server import AdmissionServer

    config = _service_config(args)
    server = AdmissionServer(config)

    async def session():
        await server.start()
        console(
            f"admission service on {config.host}:{server.port} "
            f"({config.protocol}/{config.policy}); SIGTERM or ctrl-c drains"
        )
        await server.serve_until_signalled()

    asyncio.run(session())
    manifest_extra["service"] = server.summary()
    return []


def _cluster_config(
    args: argparse.Namespace,
    *,
    n_workers: int | None = None,
    router_port: int | None = None,
):
    from repro.cluster.config import ClusterConfig

    return ClusterConfig(
        n_workers=n_workers if n_workers is not None else args.workers or 4,
        host=args.host,
        router_port=args.port if router_port is None else router_port,
        route_policy=args.route_policy,
        utilization_cap=args.utilization_cap,
        cache_dir=args.cache_dir,
        service=_service_config(args, port=0),
    )


def _run_cluster(args: argparse.Namespace, manifest_extra: dict) -> list[str]:
    import asyncio

    from repro.cluster.router import ClusterRouter
    from repro.cluster.supervisor import WorkerPool

    config = _cluster_config(args)
    pool = WorkerPool(config)
    router = ClusterRouter(config, pool)

    async def session():
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, pool.start)
        await router.start()
        console(
            f"admission cluster on {config.host}:{router.port} — "
            f"{config.n_workers} worker(s), policy={config.route_policy}, "
            f"fleet cap={config.utilization_cap:g}; SIGTERM or ctrl-c drains"
        )
        for shard, (pid, port) in sorted(pool.running().items()):
            console(f"  {shard}: pid {pid} on port {port}")
        await router.serve_until_signalled()

    asyncio.run(session())
    manifest_extra["cluster"] = {
        "n_workers": config.n_workers,
        "route_policy": config.route_policy,
        "utilization_cap": config.utilization_cap,
    }
    return []


def _run_bench_cluster(
    args: argparse.Namespace, seed: int, manifest_extra: dict
) -> list[str]:
    import json

    from repro.experiments.cluster_bench import (
        cluster_bench_document,
        run_cluster_bench,
    )

    counts = tuple(
        int(part)
        for part in (args.cluster_counts or "1,4").split(",")
        if part.strip()
    )
    results = run_cluster_bench(
        seed,
        worker_counts=counts,
        duration_s=args.duration,
        load_workers=args.load_workers,
        route_policy=args.route_policy,
        utilization_cap=args.utilization_cap,
        catalogue_size=args.catalogue,
        service=_service_config(args, port=0),
    )
    document = cluster_bench_document(results)
    for bench in document["benchmarks"]:
        info = bench["extra_info"]
        line = (
            f"  {bench['name']:<10} "
            f"{info['report']['throughput_rps']:8.0f} req/s  "
            f"p99={info['report']['latency_s'].get('p99', 0) * 1e3:.3f} ms"
        )
        if "scaling_vs_single" in info:
            line += f"  scaling={info['scaling_vs_single']:.2f}x"
        console(line)
    out_path = args.cluster_bench_json
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    console(f"wrote {out_path}")
    manifest_extra["cluster_bench"] = {
        bench["name"]: {
            key: value
            for key, value in bench["extra_info"].items()
            if key != "fleet"
        }
        for bench in document["benchmarks"]
    }
    return [out_path]


def _run_loadgen(args: argparse.Namespace, seed: int, manifest_extra: dict) -> list[str]:
    import asyncio
    import dataclasses
    import json

    from repro.service.loadgen import (
        LoadConfig,
        bench_document,
        run_against_spawned_cluster,
        run_against_spawned_server,
        run_load,
    )

    # --churn turns the trickle of admit/release into a mutation-heavy
    # mix: the admitted set changes on most operations, which is the
    # regime the incremental engine's snapshot invalidation has to earn
    # its keep in (and the one that used to leave the cache miss-heavy).
    admit_fraction, release_fraction = (
        (0.30, 0.30) if args.churn else (0.05, 0.05)
    )
    load = LoadConfig(
        host=args.host,
        port=args.port,
        duration_s=args.duration,
        workers=args.load_workers,
        target_rps=args.target_rps,
        seed=seed,
        catalogue_size=args.catalogue,
        admit_fraction=admit_fraction,
        release_fraction=release_fraction,
    )
    fleet = None
    if args.workers:
        cluster = _cluster_config(args, router_port=0)
        report, fleet = asyncio.run(run_against_spawned_cluster(cluster, load))
        summary = None
    elif args.spawn:
        config = dataclasses.replace(_service_config(args, port=0))
        report, summary = asyncio.run(run_against_spawned_server(config, load))
    else:
        report = asyncio.run(run_load(load))
        summary = None
    console(
        f"{report.requests} requests in {report.duration_s:.2f}s "
        f"-> {report.throughput_rps:.0f} req/s"
    )
    if report.latency_s:
        console(
            "latency ms: "
            + "  ".join(
                f"{key}={report.latency_s[key] * 1e3:.3f}"
                for key in ("mean", "p50", "p90", "p99", "p999", "max")
            )
        )
    for kind, latency in report.op_latency_s.items():
        console(
            f"  {kind}: "
            + "  ".join(
                f"{key}={latency[key] * 1e3:.3f}"
                for key in ("mean", "p50", "p90", "p99", "p999", "max")
            )
        )
    for shard, latency in report.shard_latency_s.items():
        console(
            f"  shard {shard}: "
            + "  ".join(
                f"{key}={latency[key] * 1e3:.3f}"
                for key in ("mean", "p50", "p90", "p99", "p999", "max")
            )
        )
    if fleet is not None:
        budget = fleet.get("fleet", {})
        console(
            f"fleet: admitted={budget.get('admitted')} "
            f"utilization={budget.get('utilization', 0.0):.4f} "
            f"cap={budget.get('utilization_cap')} "
            f"sound={budget.get('budget_sound')}"
        )
    if args.latency_csv:
        from repro.service.loadgen import write_latency_csv

        rows = write_latency_csv(report, args.latency_csv)
        console(f"wrote {args.latency_csv} ({rows} samples)")
    console(
        f"ops={report.ops}  admitted={report.admitted} "
        f"rejected={report.rejected}  shed={report.shed} "
        f"draining={report.draining}  errors={report.errors}"
    )
    document = bench_document(report, config=load, server_summary=summary)
    if fleet is not None:
        document["benchmarks"][0]["extra_info"]["fleet"] = fleet
    if summary is not None:
        cache = document["benchmarks"][0]["extra_info"]["admission_cache"]
        ratio = cache["hit_ratio"]
        console(
            f"admission cache: hits={cache['hits']:.0f} "
            f"misses={cache['misses']:.0f} hit_ratio="
            + (f"{ratio:.3f}" if ratio is not None else "n/a")
            + f"  engine={summary.get('admission_engine')}"
        )
    with open(args.bench_json, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    console(f"wrote {args.bench_json}")
    manifest_extra["loadgen"] = report.to_dict()
    artifacts = [args.bench_json]
    if args.latency_csv:
        artifacts.append(args.latency_csv)
    return artifacts


def _run_top(args: argparse.Namespace, manifest_extra: dict) -> int:
    from repro.experiments.top import run_top

    spawn_config = _service_config(args, port=0) if args.spawn else None
    code = run_top(
        args.host,
        args.port,
        interval_s=args.interval,
        iterations=args.iterations,
        once=args.once,
        spawn_config=spawn_config,
        emit=console,
    )
    manifest_extra["top"] = {
        "interval_s": args.interval,
        "once": args.once,
        "spawned": args.spawn,
    }
    return code


def _run_admission_bench(
    args: argparse.Namespace, seed: int, manifest_extra: dict
) -> list[str]:
    import json

    from repro.experiments.admission_bench import run_admission_bench

    document = run_admission_bench(seed)
    for bench in document["benchmarks"]:
        stats = bench["stats"]
        ratio = bench["extra_info"]["cache_hit_ratio"]
        console(
            f"  {bench['name']:<28} mean={stats['mean'] * 1e6:8.1f} us  "
            f"p50={stats['median'] * 1e6:8.1f} us  hit_ratio="
            + (f"{ratio:.3f}" if ratio is not None else "  n/a")
        )
    out_path = args.bench_admission_json
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    console(f"wrote {out_path}")
    manifest_extra["admission_bench"] = {
        bench["name"]: bench["extra_info"] for bench in document["benchmarks"]
    }
    return [out_path]


def _run_loss_sweep(
    args: argparse.Namespace, params: PaperParameters, manifest_extra: dict
) -> list[str]:
    import json

    from repro.experiments.loss_sweep import (
        DEFAULT_LOSS_FRACTIONS,
        loss_bench_document,
        loss_figure,
        loss_sweep,
    )

    if args.loss_fractions:
        fractions = tuple(
            float(part)
            for part in args.loss_fractions.split(",")
            if part.strip()
        )
    else:
        fractions = DEFAULT_LOSS_FRACTIONS
    result, cell_seconds = loss_sweep(
        params,
        args.bandwidth,
        loss_fractions=fractions,
        recovery_time_s=args.recovery_time,
        jobs=args.jobs,
    )
    console(result.name)
    console(result.to_table())
    console()
    console(loss_figure(result))
    artifacts: list[str] = []
    if args.csv:
        write_csv(args.csv, result.headers, result.rows)
        console(f"wrote {args.csv}")
        artifacts.append(args.csv)
    document = loss_bench_document(
        result, cell_seconds, params, args.bandwidth, args.recovery_time
    )
    out_path = args.loss_bench_json
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    console(f"wrote {out_path}")
    manifest_extra["loss_sweep"] = {
        bench["name"]: bench["extra_info"] for bench in document["benchmarks"]
    }
    artifacts.append(out_path)
    return artifacts


def _run_scale_bench(
    args: argparse.Namespace, params: PaperParameters, manifest_extra: dict
) -> list[str]:
    import json

    from repro.experiments.scale_bench import (
        run_scale_bench,
        scale_bench_document,
    )

    result = run_scale_bench(
        params,
        n_streams=args.scale_streams,
        bandwidth_mbps=args.bandwidth,
        mc_eps=args.mc_eps if args.mc_eps is not None else 5e-4,
        mc_strata=args.mc_strata if args.mc_strata is not None else 8,
        mc_antithetic=args.antithetic,
    )
    console("columnar scale benchmark")
    console(result.summary())
    document = scale_bench_document(result)
    out_path = args.scale_bench_json
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    console(f"wrote {out_path}")
    manifest_extra["scale_bench"] = {
        bench["name"]: bench["extra_info"] for bench in document["benchmarks"]
    }
    return [out_path]


def _dispatch(
    args: argparse.Namespace,
    params: PaperParameters,
    artifacts: list[str],
    manifest_extra: dict,
) -> int:
    """Run the selected experiment(s); returns the exit code."""
    exit_code = 0
    if args.experiment == "serve":
        artifacts.extend(_run_serve(args, manifest_extra))
    if args.experiment == "loadgen":
        artifacts.extend(_run_loadgen(args, params.seed, manifest_extra))
    if args.experiment == "cluster":
        artifacts.extend(_run_cluster(args, manifest_extra))
    if args.experiment == "bench-cluster":
        artifacts.extend(_run_bench_cluster(args, params.seed, manifest_extra))
    if args.experiment == "top":
        exit_code = _run_top(args, manifest_extra)
    if args.experiment == "bench-admission":
        artifacts.extend(_run_admission_bench(args, params.seed, manifest_extra))
    if args.experiment == "loss-sweep":
        artifacts.extend(_run_loss_sweep(args, params, manifest_extra))
    if args.experiment == "bench-scale":
        artifacts.extend(_run_scale_bench(args, params, manifest_extra))
    if args.experiment == "fuzz":
        from repro.verify import FuzzConfig, run_fuzz, run_mutation_smoke

        seed = args.fuzz_seed if args.fuzz_seed is not None else params.seed
        fuzz_report = run_fuzz(
            FuzzConfig(
                seed=seed,
                n_cases=args.fuzz_cases,
                repro_dir=args.repro_dir,
            )
        )
        console(fuzz_report.summary())
        artifacts.extend(fuzz_report.repro_paths)
        if not fuzz_report.ok:
            exit_code = 1
        if args.mutation_smoke:
            smoke = run_mutation_smoke(seed=seed)
            console(smoke.summary())
            if not smoke.all_detected:
                exit_code = 1
    if args.experiment in ("figure1", "all"):
        artifacts.extend(_run_figure1(args, params))
    if args.experiment in ("ttrt", "all"):
        _run_sweep(ttrt_sweep(params, args.bandwidth, jobs=args.jobs))
    if args.experiment in ("frames", "all"):
        _run_sweep(frame_size_sweep(params, args.bandwidth, jobs=args.jobs))
    if args.experiment in ("periods", "all"):
        _run_sweep(period_sweep(params, args.bandwidth, jobs=args.jobs))
    if args.experiment in ("sba", "all"):
        _run_sweep(sba_comparison(params, args.bandwidth))
    if args.experiment in ("ringsize", "all"):
        _run_sweep(ring_size_sweep(params, args.bandwidth, jobs=args.jobs))
    if args.experiment in ("throughput", "all"):
        console("throughput division (sync at half breakdown, async saturating)")
        console(throughput_experiment(params).to_table())
    if args.experiment in ("crossover", "all"):
        counts = (5, 10, 20) if params.n_stations <= 20 else (10, 25, 50, 100)
        console("crossover frontier (ring size -> handover bandwidth)")
        console(crossover_map(params, station_counts=counts).to_table())
    if args.experiment in ("sharpness", "all"):
        from repro.experiments.sharpness import sharpness_experiment

        sharp_params = params.scaled_down(
            min(params.n_stations, 8), params.monte_carlo_sets
        )
        console("criterion sharpness (empirical / analytic breakdown scale)")
        console(
            sharpness_experiment(
                sharp_params, bandwidth_mbps=args.bandwidth, n_sets=5
            ).to_table()
        )
    if args.experiment == "report":
        from repro.experiments.report import generate_report

        text = generate_report(params)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text)
            console(f"wrote {args.out}")
            artifacts.append(args.out)
        else:
            console(text)
    return exit_code


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="Regenerate the paper's evaluation",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "figure1", "ttrt", "frames", "periods", "sba", "ringsize",
            "throughput", "crossover", "sharpness", "report", "fuzz",
            "serve", "loadgen", "top", "bench-admission", "loss-sweep",
            "bench-scale", "cluster", "bench-cluster", "all",
        ],
    )
    service = parser.add_argument_group(
        "admission service", "options for the serve/loadgen commands "
        "(USAGE.md §14)"
    )
    service.add_argument("--host", type=str, default="127.0.0.1",
                         help="serve/loadgen: bind/connect address")
    service.add_argument("--port", type=int, default=8711,
                         help="serve/loadgen: TCP port (serve: 0 = ephemeral)")
    service.add_argument(
        "--service-protocol", type=str, default="pdp", choices=["pdp", "ttp"],
        help="serve: which protocol analysis backs admission",
    )
    service.add_argument(
        "--variant", type=str, default="modified",
        choices=["standard", "modified"],
        help="serve: PDP criterion variant",
    )
    service.add_argument(
        "--policy", type=str, default="exact",
        choices=["exact", "sufficient", "hybrid"],
        help="serve: admission policy",
    )
    service.add_argument(
        "--admission-engine", type=str, default=None,
        choices=["scalar", "incremental", "auto"],
        help="admission engine: the full batch oracle, the "
        "O(changed-levels) incremental engine, or auto (incremental "
        "where supported; the default — USAGE.md §15)",
    )
    service.add_argument("--batch-window", type=float, default=0.002,
                         help="serve: micro-batch coalescing window (s)")
    service.add_argument("--batch-max", type=int, default=64,
                         help="serve: largest coalesced batch")
    service.add_argument("--queue-limit", type=int, default=256,
                         help="serve: intake queue bound (full = 429)")
    service.add_argument(
        "--rate-limit", type=float, default=0.0,
        help="serve: per-client sustained rps (0 disables)",
    )
    service.add_argument("--duration", type=float, default=5.0,
                         help="loadgen: seconds of load")
    service.add_argument("--load-workers", type=int, default=8,
                         help="loadgen: concurrent closed-loop clients")
    service.add_argument(
        "--target-rps", type=float, default=0.0,
        help="loadgen: paced aggregate request rate (0 = closed loop)",
    )
    service.add_argument("--catalogue", type=int, default=32,
                         help="loadgen: distinct candidate streams "
                         "(smaller = hotter cache)")
    service.add_argument(
        "--spawn", action="store_true",
        help="loadgen: spawn an in-process server on an ephemeral port "
        "instead of targeting --host/--port",
    )
    service.add_argument(
        "--churn", action="store_true",
        help="loadgen: mutation-heavy op mix (30%% admits / 30%% "
        "releases) instead of the 5%%/5%% serving trickle",
    )
    service.add_argument(
        "--bench-json", type=str, default="BENCH_service.json",
        metavar="PATH", help="loadgen: canary output path",
    )
    cluster = parser.add_argument_group(
        "admission cluster", "options for the cluster/bench-cluster "
        "commands and loadgen --workers (USAGE.md §19)"
    )
    cluster.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="cluster: worker processes (default 4); loadgen: spawn an "
        "N-worker cluster and drive its router (0 = no cluster)",
    )
    cluster.add_argument(
        "--route-policy", type=str, default="hash",
        choices=["hash", "random", "least-loaded", "power-of-two"],
        help="cluster: how the router picks a shard per request "
        "(default: consistent hash over the stream key)",
    )
    cluster.add_argument(
        "--utilization-cap", type=float, default=0.9,
        help="cluster: the fleet-wide utilization budget the router's "
        "lease ledger splits across workers",
    )
    cluster.add_argument(
        "--cluster-counts", type=str, default=None, metavar="N0,N1,...",
        help="bench-cluster: comma-separated worker counts to measure "
        "(default: 1,4)",
    )
    cluster.add_argument(
        "--cluster-bench-json", type=str, default="BENCH_cluster.json",
        metavar="PATH", help="bench-cluster: canary output path",
    )
    service.add_argument(
        "--latency-csv", type=str, default=None, metavar="PATH",
        help="loadgen: also write every measured latency (with its "
        "server-side trace id) as CSV",
    )
    service.add_argument(
        "--trace-sample", type=float, default=1.0,
        help="serve/loadgen --spawn/top --spawn: fraction of requests "
        "traced (deterministic systematic sampling; 0 disables)",
    )
    service.add_argument(
        "--trace-buffer", type=int, default=256,
        help="serve: finished traces retained for /v1/traces",
    )
    service.add_argument(
        "--trace-jsonl", type=str, default=None, metavar="PATH",
        help="serve: append every finished trace to PATH as JSONL",
    )
    service.add_argument(
        "--slow-trace", type=float, default=0.0, metavar="SECONDS",
        help="serve: log the full span tree of requests slower than "
        "this (0 disables the slow-request log)",
    )
    service.add_argument(
        "--interval", type=float, default=2.0,
        help="top: seconds between dashboard frames",
    )
    service.add_argument(
        "--iterations", type=int, default=None,
        help="top: stop after N frames (default: run until ctrl-c)",
    )
    service.add_argument(
        "--once", action="store_true",
        help="top: print a single frame (no ANSI redraw) and exit",
    )
    service.add_argument(
        "--bench-admission-json", type=str, default="BENCH_admission.json",
        metavar="PATH", help="bench-admission: canary output path",
    )
    parser.add_argument(
        "--loss-bench-json", type=str, default="BENCH_loss.json",
        metavar="PATH", help="loss-sweep: canary output path",
    )
    parser.add_argument(
        "--scale-bench-json", type=str, default="BENCH_scale.json",
        metavar="PATH", help="bench-scale: canary output path",
    )
    parser.add_argument(
        "--scale-streams", type=int, default=1_000_000, metavar="N",
        help="bench-scale: columnar set size (default: one million)",
    )
    parser.add_argument(
        "--mc-eps", type=float, default=None, metavar="EPS",
        help="run Monte Carlo cells as streaming estimates stopping at "
        "CI half-width EPS (default: fixed-N paper sampling); "
        "bench-scale uses 5e-4 when unset",
    )
    parser.add_argument(
        "--mc-strata", type=int, default=None, metavar="S",
        help="Latin-hypercube period strata per streaming chunk "
        "(default: 1; bench-scale's variance-reduced run uses 8)",
    )
    parser.add_argument(
        "--antithetic", action="store_true",
        help="pair every streaming Monte Carlo sample with its "
        "period-reflected antithetic twin",
    )
    parser.add_argument(
        "--loss-fractions", type=str, default=None, metavar="L0,L1,...",
        help="loss-sweep: comma-separated loss fractions "
        "(default: 0,0.005,0.01,0.02,0.05,0.1)",
    )
    parser.add_argument(
        "--recovery-time", type=float, default=1e-3, metavar="SECONDS",
        help="loss-sweep: token claim/recovery latency charged per ring "
        "fault (default: 1e-3)",
    )
    parser.add_argument(
        "--fuzz-cases", type=int, default=60,
        help="fuzz: number of generated cases (deterministic per seed)",
    )
    parser.add_argument(
        "--fuzz-seed", type=int, default=None,
        help="fuzz: campaign seed (default: the paper parameters' seed)",
    )
    parser.add_argument(
        "--repro-dir", type=str, default=".", metavar="DIR",
        help="fuzz: directory for replayable counterexample files",
    )
    parser.add_argument(
        "--mutation-smoke", action="store_true",
        help="fuzz: also inject deliberate bugs and require detection",
    )
    parser.add_argument("--out", type=str, default=None,
                        help="output path for the markdown report")
    parser.add_argument("--fast", action="store_true", help="small ring, few sets")
    parser.add_argument("--sets", type=int, default=None, help="Monte Carlo sets")
    parser.add_argument("--stations", type=int, default=None, help="ring size")
    parser.add_argument("--bandwidth", type=float, default=10.0, help="Mbps")
    parser.add_argument("--csv", type=str, default=None, help="CSV output path")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for experiment grids (0 = all cores); "
        "results are identical for every value",
    )
    parser.add_argument(
        "--sim-engine", type=str, default=None,
        choices=["scalar", "fast", "auto"],
        help="simulator engine: the scalar oracles, the event-compressing "
        "fast paths, or auto (fast where supported; the default)",
    )
    parser.add_argument(
        "--cache-dir", type=str, default=None, metavar="DIR",
        help="persist the content-addressed result cache under DIR "
        "(default: in-memory only; see USAGE.md §13)",
    )
    parser.add_argument(
        "--log-level", type=str, default="info",
        choices=["debug", "info", "warning", "error"],
        help="stderr log threshold (per-cell progress appears at info)",
    )
    parser.add_argument(
        "--log-json", type=str, default=None, metavar="PATH",
        help="also append every log record to PATH as JSONL",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress stdout output (logs and artifacts still written)",
    )
    parser.add_argument(
        "--manifest", type=str, default=None, metavar="PATH",
        help="run-manifest path (default: manifest.json next to the CSV, "
        "or in the working directory)",
    )
    parser.add_argument(
        "--no-manifest", action="store_true",
        help="do not write a run manifest",
    )
    args = parser.parse_args(argv)

    obslog.setup_logging(
        level=args.log_level, json_path=args.log_json, quiet=args.quiet
    )
    log = obslog.get_logger("experiments.runner")
    if args.sim_engine is not None:
        from repro.sim import dispatch as sim_dispatch

        sim_dispatch.set_default_engine(args.sim_engine)
        log.info("sim engine forced to %s", args.sim_engine,
                 extra={"sim_engine": args.sim_engine})
    if args.admission_engine is not None:
        from repro import admission_incremental

        admission_incremental.set_default_engine(args.admission_engine)
        log.info("admission engine forced to %s", args.admission_engine,
                 extra={"admission_engine": args.admission_engine})
    if args.cache_dir is not None:
        from repro import cache as result_cache_mod

        result_cache_mod.configure(directory=args.cache_dir)
        log.info("result cache persisted under %s", args.cache_dir,
                 extra={"cache_dir": args.cache_dir})
    log.info(
        "starting experiment %s",
        args.experiment,
        extra={"experiment": args.experiment, "jobs": args.jobs},
    )

    params = build_parameters(args.fast, args.sets, args.stations)
    if args.mc_eps is not None and args.experiment != "bench-scale":
        # bench-scale drives the streaming estimator itself (it compares
        # both modes); everywhere else --mc-eps switches the Monte Carlo
        # cells to accuracy-targeted streaming estimation.
        params = params.with_streaming_mc(
            args.mc_eps,
            strata=args.mc_strata if args.mc_strata is not None else 1,
            antithetic=args.antithetic,
        )
        log.info(
            "streaming Monte Carlo enabled",
            extra={
                "mc_eps": args.mc_eps,
                "mc_strata": params.mc_strata,
                "mc_antithetic": params.mc_antithetic,
            },
        )
    started = time.perf_counter()
    artifacts: list[str] = []
    manifest_extra: dict = {}
    exit_code = 0
    interrupted = False

    # SIGTERM takes the same graceful path as ctrl-c for the whole
    # invocation (the serve command's event loop installs its own handler
    # on top, so a served session drains instead).
    previous_term = _sigterm_as_interrupt()
    try:
        with timing.span(f"runner/{args.experiment}"):
            exit_code = _dispatch(args, params, artifacts, manifest_extra)
    except KeyboardInterrupt:
        # Still write the manifest: a partial run that says what finished
        # beats an aborted run that says nothing.  130 = killed by SIGINT.
        interrupted = True
        exit_code = 130
        manifest_extra["interrupted"] = True
        log.warning(
            "interrupted; writing partial manifest",
            extra={"experiment": args.experiment},
        )
        console("\ninterrupted")
    finally:
        if previous_term is not None:
            signal.signal(signal.SIGTERM, previous_term)

    elapsed = time.perf_counter() - started
    manifest_path = resolve_manifest_path(args)
    if manifest_path is not None:
        document = obsmanifest.build_manifest(
            command=args.experiment,
            cli_args={
                key: value for key, value in vars(args).items()
                if not key.startswith("_")
            },
            parameters=params,
            wall_time_s=elapsed,
            metrics=metrics.snapshot(),
            spans=timing.snapshot(),
            artifacts=artifacts,
            extra=manifest_extra or None,
        )
        obsmanifest.write_manifest(manifest_path, document)
        log.info("wrote manifest %s", manifest_path,
                 extra={"artifact": manifest_path})
        console(f"wrote {manifest_path}")

    console(f"\nelapsed: {elapsed:.1f}s")
    log.info(
        "%s in %.2fs",
        "interrupted" if interrupted else "finished",
        elapsed,
        extra={"wall_time_s": elapsed, "interrupted": interrupted},
    )
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
