"""Command-line experiment runner.

Usage::

    python -m repro.experiments.runner figure1 [--fast] [--csv out.csv] [--jobs N]
    python -m repro.experiments.runner ttrt --bandwidth 100
    python -m repro.experiments.runner frames --bandwidth 10
    python -m repro.experiments.runner periods --bandwidth 10
    python -m repro.experiments.runner sba --bandwidth 100
    python -m repro.experiments.runner ringsize --bandwidth 100
    python -m repro.experiments.runner throughput
    python -m repro.experiments.runner crossover
    python -m repro.experiments.runner all --fast

``--fast`` shrinks the ring to 20 stations and the Monte Carlo count to
10 sets, which turns the full-figure run from minutes into seconds while
preserving every qualitative shape.

``--jobs N`` fans the independent grid cells of an experiment across N
worker processes (0 = all cores).  Each cell reseeds from the base seed,
so the output is bit-identical for every ``--jobs`` value.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.config import PaperParameters
from repro.experiments.crossover import crossover_map
from repro.experiments.figure1 import run_figure1
from repro.experiments.reporting import write_csv
from repro.experiments.sweeps import (
    frame_size_sweep,
    period_sweep,
    ring_size_sweep,
    sba_comparison,
    ttrt_sweep,
)
from repro.experiments.throughput import throughput_experiment

__all__ = ["main", "build_parameters"]


def build_parameters(fast: bool, sets: int | None, stations: int | None) -> PaperParameters:
    """Assemble parameters from CLI flags."""
    params = PaperParameters()
    if fast:
        params = params.scaled_down(n_stations=20, monte_carlo_sets=10)
    if stations is not None:
        params = params.scaled_down(stations, params.monte_carlo_sets)
    if sets is not None:
        params = params.scaled_down(params.n_stations, sets)
    return params


def _run_figure1(args: argparse.Namespace, params: PaperParameters) -> None:
    result = run_figure1(params, jobs=args.jobs)
    print(result.to_table())
    print()
    print(result.to_ascii_plot())
    print("shape checks:")
    for check, passed in result.shape_report().items():
        print(f"  {'PASS' if passed else 'FAIL'}  {check}")
    crossover = result.crossover_bandwidth()
    print(f"crossover bandwidth: {crossover} Mbps")
    if args.csv:
        write_csv(
            args.csv,
            ["bandwidth_mbps", "pdp_standard", "pdp_modified", "ttp",
             "se_standard", "se_modified", "se_ttp"],
            result.rows(),
        )
        print(f"wrote {args.csv}")


def _run_sweep(sweep_result) -> None:
    print(sweep_result.name)
    print(sweep_result.to_table())


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="Regenerate the paper's evaluation",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "figure1", "ttrt", "frames", "periods", "sba", "ringsize",
            "throughput", "crossover", "sharpness", "report", "all",
        ],
    )
    parser.add_argument("--out", type=str, default=None,
                        help="output path for the markdown report")
    parser.add_argument("--fast", action="store_true", help="small ring, few sets")
    parser.add_argument("--sets", type=int, default=None, help="Monte Carlo sets")
    parser.add_argument("--stations", type=int, default=None, help="ring size")
    parser.add_argument("--bandwidth", type=float, default=10.0, help="Mbps")
    parser.add_argument("--csv", type=str, default=None, help="CSV output path")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for experiment grids (0 = all cores); "
        "results are identical for every value",
    )
    args = parser.parse_args(argv)

    params = build_parameters(args.fast, args.sets, args.stations)
    started = time.perf_counter()

    if args.experiment in ("figure1", "all"):
        _run_figure1(args, params)
    if args.experiment in ("ttrt", "all"):
        _run_sweep(ttrt_sweep(params, args.bandwidth, jobs=args.jobs))
    if args.experiment in ("frames", "all"):
        _run_sweep(frame_size_sweep(params, args.bandwidth, jobs=args.jobs))
    if args.experiment in ("periods", "all"):
        _run_sweep(period_sweep(params, args.bandwidth, jobs=args.jobs))
    if args.experiment in ("sba", "all"):
        _run_sweep(sba_comparison(params, args.bandwidth))
    if args.experiment in ("ringsize", "all"):
        _run_sweep(ring_size_sweep(params, args.bandwidth, jobs=args.jobs))
    if args.experiment in ("throughput", "all"):
        print("throughput division (sync at half breakdown, async saturating)")
        print(throughput_experiment(params).to_table())
    if args.experiment in ("crossover", "all"):
        counts = (5, 10, 20) if params.n_stations <= 20 else (10, 25, 50, 100)
        print("crossover frontier (ring size -> handover bandwidth)")
        print(crossover_map(params, station_counts=counts).to_table())
    if args.experiment in ("sharpness", "all"):
        from repro.experiments.sharpness import sharpness_experiment

        sharp_params = params.scaled_down(
            min(params.n_stations, 8), params.monte_carlo_sets
        )
        print("criterion sharpness (empirical / analytic breakdown scale)")
        print(
            sharpness_experiment(
                sharp_params, bandwidth_mbps=args.bandwidth, n_sets=5
            ).to_table()
        )
    if args.experiment == "report":
        from repro.experiments.report import generate_report

        text = generate_report(params)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote {args.out}")
        else:
            print(text)

    print(f"\nelapsed: {time.perf_counter() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
