"""Crossover frontier: where the protocol recommendation flips.

The paper's conclusion is a bandwidth rule of thumb ("priority driven
below ~10 Mbps, timed token above").  The crossover point, however, moves
with the ring configuration — larger rings raise both protocols' fixed
costs but the PDP's faster (its per-frame arbitration pays Θ, which grows
with ring size, on *every* frame).  This experiment maps the frontier:
for each station count, the lowest bandwidth at which the timed token
protocol's average breakdown utilization overtakes the better priority
driven variant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.montecarlo import average_breakdown_utilization
from repro.analysis.pdp import PDPVariant
from repro.errors import ConfigurationError
from repro.experiments.config import PaperParameters
from repro.experiments.reporting import format_table
from repro.units import mbps

__all__ = ["CrossoverPoint", "CrossoverMap", "crossover_map"]


@dataclass(frozen=True)
class CrossoverPoint:
    """The frontier sample for one ring size.

    Attributes:
        n_stations: ring size.
        crossover_mbps: first grid bandwidth where TTP wins, or None when
            TTP never overtakes on the grid.
        pdp_at_crossover: the better PDP variant's value there.
        ttp_at_crossover: TTP's value there.
    """

    n_stations: int
    crossover_mbps: float | None
    pdp_at_crossover: float
    ttp_at_crossover: float


@dataclass(frozen=True)
class CrossoverMap:
    """The frontier across ring sizes."""

    points: tuple[CrossoverPoint, ...]

    def to_table(self) -> str:
        """Fixed-width rendering."""
        return format_table(
            ["stations", "crossover (Mbps)", "PDP there", "TTP there"],
            [
                [
                    p.n_stations,
                    p.crossover_mbps if p.crossover_mbps is not None else "none",
                    p.pdp_at_crossover,
                    p.ttp_at_crossover,
                ]
                for p in self.points
            ],
        )

    def frontier(self) -> list[tuple[int, float | None]]:
        """``(stations, crossover_mbps)`` pairs."""
        return [(p.n_stations, p.crossover_mbps) for p in self.points]


def crossover_map(
    parameters: PaperParameters,
    station_counts: Sequence[int] = (10, 25, 50, 100),
    bandwidth_grid_mbps: Sequence[float] = (
        1.0, 1.6, 2.5, 4.0, 6.3, 10.0, 16.0, 25.0, 40.0, 63.0, 100.0,
    ),
) -> CrossoverMap:
    """Locate the PDP→TTP handover bandwidth for each ring size."""
    if not station_counts or not bandwidth_grid_mbps:
        raise ConfigurationError("need at least one station count and bandwidth")
    points: list[CrossoverPoint] = []
    for n in station_counts:
        varied = parameters.scaled_down(n, parameters.monte_carlo_sets)
        sampler = varied.sampler()
        crossover: float | None = None
        pdp_value = ttp_value = 0.0
        for bandwidth in bandwidth_grid_mbps:
            bw_bps = mbps(bandwidth)
            pdp_best = max(
                average_breakdown_utilization(
                    varied.pdp_analysis(bandwidth, variant),
                    sampler,
                    bw_bps,
                    varied.monte_carlo_sets,
                    np.random.default_rng(varied.seed),
                    rel_tol=1e-3,
                ).mean
                for variant in (PDPVariant.STANDARD, PDPVariant.MODIFIED)
            )
            ttp = average_breakdown_utilization(
                varied.ttp_analysis(bandwidth),
                sampler,
                bw_bps,
                varied.monte_carlo_sets,
                np.random.default_rng(varied.seed),
            ).mean
            if ttp > pdp_best:
                crossover, pdp_value, ttp_value = bandwidth, pdp_best, ttp
                break
        points.append(
            CrossoverPoint(
                n_stations=n,
                crossover_mbps=crossover,
                pdp_at_crossover=pdp_value,
                ttp_at_crossover=ttp_value,
            )
        )
    return CrossoverMap(points=tuple(points))
