"""Cluster scaling benchmark: fleet throughput vs worker count.

``runner bench-cluster`` spawns a real sharded cluster (worker
subprocesses + router) at each requested worker count, drives the same
seeded workload through the router, and reports fleet throughput,
per-shard latency percentiles, and the scaling ratio between the
largest and the single-worker fleet.  The result lands in
``BENCH_cluster.json`` in the standard canary schema, so
``tools/bench_trend.py`` tracks it like every other benchmark.

Honesty note: the scaling ratio is *measured*, never assumed.  On a
single-core host a 4-worker fleet cannot beat one worker (every process
shares the core and the router adds a hop), and the recorded ratio will
say so — the canary document carries ``cpu_count`` precisely so the
verify guard (tools/verify_smoke.py) can hold the ≥2.5× floor only on
hardware that can physically express it.
"""

from __future__ import annotations

import asyncio
import datetime
import os
import platform
import statistics
import tempfile

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.obs.benchjson import BENCH_SCHEMA_VERSION, cpu_info
from repro.service.loadgen import LoadConfig, run_against_spawned_cluster
from repro.service.protocol import ServiceConfig

__all__ = ["run_cluster_bench", "cluster_bench_document"]

#: Worker counts measured by default: the single-controller baseline
#: and the 4-way fleet the scaling floor is defined against.
DEFAULT_WORKER_COUNTS = (1, 4)


def run_cluster_bench(
    seed: int,
    *,
    worker_counts=DEFAULT_WORKER_COUNTS,
    duration_s: float = 4.0,
    load_workers: int = 8,
    route_policy: str = "hash",
    utilization_cap: float = 0.9,
    catalogue_size: int = 64,
    service: ServiceConfig | None = None,
) -> list[dict]:
    """Measure each worker count; returns one result dict per count.

    Each run gets a fresh shared cache directory (the fleet's common
    ``REPRO_CACHE_DIR`` tier), so cross-run warmth never flatters a
    later measurement.
    """
    template = service if service is not None else ServiceConfig(port=0)
    results: list[dict] = []
    for n_workers in worker_counts:
        with tempfile.TemporaryDirectory(
            prefix="repro-cluster-bench-"
        ) as cache_dir:
            cluster = ClusterConfig(
                n_workers=n_workers,
                route_policy=route_policy,
                utilization_cap=utilization_cap,
                cache_dir=cache_dir,
                service=template,
                seed=seed,
            )
            load = LoadConfig(
                duration_s=duration_s,
                workers=load_workers,
                seed=seed,
                catalogue_size=catalogue_size,
            )
            report, fleet = asyncio.run(
                run_against_spawned_cluster(cluster, load)
            )
        results.append(
            {
                "n_workers": n_workers,
                "route_policy": route_policy,
                "report": report,
                "fleet": fleet,
            }
        )
    return results


def _stats(latencies: list, throughput_rps: float) -> dict:
    if not latencies:
        return {
            key: None
            for key in (
                "min", "max", "mean", "stddev", "median", "iqr", "q1", "q3",
                "ops", "total", "rounds", "iterations",
            )
        }
    q1, median, q3 = (
        float(x) for x in np.percentile(latencies, [25.0, 50.0, 75.0])
    )
    return {
        "min": float(min(latencies)),
        "max": float(max(latencies)),
        "mean": float(statistics.fmean(latencies)),
        "stddev": float(statistics.pstdev(latencies)),
        "median": median,
        "iqr": q3 - q1,
        "q1": q1,
        "q3": q3,
        "ops": throughput_rps,
        "total": float(sum(latencies)),
        "rounds": len(latencies),
        "iterations": 1,
    }


def cluster_bench_document(results: list[dict]) -> dict:
    """The measured counts as one ``BENCH_cluster.json`` document.

    One benchmark entry per worker count (``fleet_w1``, ``fleet_w4``,
    ...); the multi-worker entries carry
    ``extra_info["scaling_vs_single"]`` — measured fleet throughput
    over the single-worker fleet's — and every entry carries
    ``cpu_count`` so downstream guards can scale expectations to the
    hardware that produced the number.
    """
    by_count = {result["n_workers"]: result for result in results}
    base = by_count.get(1)
    base_rps = base["report"].throughput_rps if base is not None else None
    benchmarks = []
    for result in results:
        report = result["report"]
        n_workers = result["n_workers"]
        extra_info = {
            "n_workers": n_workers,
            "route_policy": result["route_policy"],
            "cpu_count": os.cpu_count(),
            "report": report.to_dict(),
            "fleet": result["fleet"],
        }
        if base_rps and n_workers != 1:
            extra_info["scaling_vs_single"] = (
                report.throughput_rps / base_rps
            )
        benchmarks.append(
            {
                "group": "cluster",
                "name": f"fleet_w{n_workers}",
                "fullname": (
                    "repro.experiments.cluster_bench::"
                    f"run_cluster_bench[workers={n_workers}]"
                ),
                "params": {"n_workers": n_workers},
                "extra_info": extra_info,
                "stats": _stats(report.latencies, report.throughput_rps),
            }
        )
    uname = platform.uname()
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "datetime": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(),
        "pytest_benchmark_version": None,
        "commit_info": None,
        "machine": {
            "node": uname.node,
            "machine": uname.machine,
            "system": uname.system,
            "release": uname.release,
            "python_version": platform.python_version(),
            "cpu": cpu_info(arch=uname.machine),
        },
        "benchmarks": benchmarks,
    }
