"""The paper's operating conditions (Section 6.2) as one parameter object.

Every experiment takes a :class:`PaperParameters`; the defaults reproduce
the reported configuration exactly:

* 100 stations, 100 m apart, signal speed 0.75c;
* station bit delays 4 bits (IEEE 802.5) / 75 bits (FDDI);
* frame payload 64 bytes, frame overhead 112 bits;
* periods uniform with mean 100 ms and max/min ratio 10;
* one synchronous stream per station.

Factories hand out rings, frame formats, analyses, and samplers derived
from the parameters, so sweep code never assembles those by hand.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, replace

from repro.analysis.pdp import PDPAnalysis, PDPVariant
from repro.analysis.rm import ExactRMTest
from repro.analysis.ttp import TTPAnalysis
from repro.analysis.ttrt import SqrtRuleTTRT, TTRTPolicy
from repro.errors import ConfigurationError
from repro.messages.generators import MessageSetSampler, PeriodDistribution
from repro.network.frames import FrameFormat
from repro.network.ring import RingNetwork
from repro.network.standards import fddi_ring, ieee_802_5_ring
from repro.units import bytes_to_bits, mbps

__all__ = ["PaperParameters"]


@dataclass(frozen=True)
class PaperParameters:
    """Operating conditions for the protocol comparison.

    Attributes:
        n_stations: stations on the ring (= synchronous streams).
        station_spacing_m: distance between neighbours, meters.
        velocity_factor: signal speed as a fraction of c.
        frame_payload_bytes: frame information field, bytes.
        frame_overhead_bits: frame header/trailer, bits.
        mean_period_s: average synchronous period.
        period_ratio: maximum-to-minimum period ratio.
        monte_carlo_sets: message sets per estimate.
        seed: base RNG seed (each protocol estimate derives from it
            deterministically so runs are reproducible).
        mc_eps: target CI half-width for the streaming Monte Carlo
            estimator; ``None`` (the default) keeps the fixed-N paper
            path bit-identical to earlier revisions.
        mc_strata: Latin-hypercube period strata per streaming chunk
            (1 = plain sampling; only used when ``mc_eps`` is set).
        mc_antithetic: pair every streaming sample with its
            period-reflected antithetic twin (only when ``mc_eps`` set).
    """

    n_stations: int = 100
    station_spacing_m: float = 100.0
    velocity_factor: float = 0.75
    frame_payload_bytes: float = 64.0
    frame_overhead_bits: float = 112.0
    mean_period_s: float = 0.100
    period_ratio: float = 10.0
    monte_carlo_sets: int = 30
    seed: int = 20_260_704
    mc_eps: float | None = None
    mc_strata: int = 1
    mc_antithetic: bool = False

    #: Exact-test structures keyed by period vector, shared by every
    #: analysis this parameter object hands out.  The paired-sampling
    #: design reuses the same seed — hence the same period vectors — for
    #: every bandwidth and both PDP variants, so one cache turns the
    #: per-cell structure builds of a sweep into hits after the first
    #: bandwidth.  Excluded from equality/repr and dropped on pickling.
    _pdp_test_cache: "OrderedDict[tuple[float, ...], ExactRMTest]" = field(
        default_factory=OrderedDict, init=False, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.monte_carlo_sets < 1:
            raise ConfigurationError(
                f"need at least one Monte Carlo set, got {self.monte_carlo_sets!r}"
            )
        if self.mc_eps is not None and self.mc_eps <= 0:
            raise ConfigurationError(
                f"mc_eps must be positive when set, got {self.mc_eps!r}"
            )
        if self.mc_strata < 1:
            raise ConfigurationError(
                f"mc_strata must be >= 1, got {self.mc_strata!r}"
            )

    def __getstate__(self) -> dict:
        # Worker processes rebuild structures on demand; shipping tens of
        # megabytes of cached matrices through pickle would cost more than
        # it saves.
        state = dict(self.__dict__)
        state["_pdp_test_cache"] = OrderedDict()
        return state

    # -- derived factories ------------------------------------------------------

    def frame_format(self) -> FrameFormat:
        """The MAC frame format for both protocols."""
        return FrameFormat(
            info_bits=bytes_to_bits(self.frame_payload_bytes),
            overhead_bits=self.frame_overhead_bits,
        )

    def pdp_ring(self, bandwidth_mbps: float) -> RingNetwork:
        """An IEEE 802.5 ring at ``bandwidth_mbps``."""
        return ieee_802_5_ring(
            mbps(bandwidth_mbps),
            n_stations=self.n_stations,
            station_spacing_m=self.station_spacing_m,
            velocity_factor=self.velocity_factor,
        )

    def ttp_ring(self, bandwidth_mbps: float) -> RingNetwork:
        """An FDDI ring at ``bandwidth_mbps``."""
        return fddi_ring(
            mbps(bandwidth_mbps),
            n_stations=self.n_stations,
            station_spacing_m=self.station_spacing_m,
            velocity_factor=self.velocity_factor,
        )

    def pdp_analysis(
        self, bandwidth_mbps: float, variant: PDPVariant
    ) -> PDPAnalysis:
        """A Theorem 4.1 analysis at ``bandwidth_mbps``.

        All analyses built by one parameter object — both variants, every
        bandwidth — share a single period-structure cache sized to hold
        the full Monte Carlo population, because the expensive part of the
        exact test depends only on the periods and paired sampling makes
        those identical across the whole sweep.
        """
        return PDPAnalysis(
            self.pdp_ring(bandwidth_mbps),
            self.frame_format(),
            variant,
            cache_size=min(self.monte_carlo_sets + 2, 64),
            shared_cache=self._pdp_test_cache,
        )

    def ttp_analysis(
        self, bandwidth_mbps: float, ttrt_policy: TTRTPolicy | None = None
    ) -> TTPAnalysis:
        """A Theorem 5.1 analysis at ``bandwidth_mbps``."""
        return TTPAnalysis(
            self.ttp_ring(bandwidth_mbps),
            self.frame_format(),
            ttrt_policy if ttrt_policy is not None else SqrtRuleTTRT(),
        )

    def period_distribution(self) -> PeriodDistribution:
        """The uniform period distribution of the Monte Carlo study."""
        return PeriodDistribution(
            mean_period_s=self.mean_period_s, ratio=self.period_ratio
        )

    def sampler(self) -> MessageSetSampler:
        """A message-set sampler with one stream per station."""
        return MessageSetSampler(
            n_streams=self.n_stations, periods=self.period_distribution()
        )

    # -- observability -----------------------------------------------------------

    def cache_info(self) -> dict:
        """Occupancy of the shared exact-test structure cache.

        Returns ``{"entries": ..., "capacity": ...}`` for this parameter
        object's cache; global hit/miss/eviction counters live in the
        metrics registry under ``pdp.exact_cache.*`` (see
        :mod:`repro.obs.metrics`).
        """
        return {
            "entries": len(self._pdp_test_cache),
            "capacity": min(self.monte_carlo_sets + 2, 64),
        }

    # -- variations ----------------------------------------------------------------

    def scaled_down(self, n_stations: int, monte_carlo_sets: int) -> "PaperParameters":
        """A smaller instance for quick runs and CI-sized benchmarks."""
        return replace(
            self, n_stations=n_stations, monte_carlo_sets=monte_carlo_sets
        )

    def with_periods(
        self, mean_period_s: float, period_ratio: float
    ) -> "PaperParameters":
        """A copy with a different period distribution."""
        return replace(
            self, mean_period_s=mean_period_s, period_ratio=period_ratio
        )

    def with_streaming_mc(
        self,
        eps: float,
        strata: int = 1,
        antithetic: bool = False,
    ) -> "PaperParameters":
        """A copy that runs Monte Carlo cells as streaming estimates.

        ``monte_carlo_sets`` becomes the per-chunk size; the cell stops
        when the CI half-width drops below ``eps`` (hard-capped, see
        :func:`repro.analysis.montecarlo
        .streaming_average_breakdown_utilization`).
        """
        return replace(
            self, mc_eps=eps, mc_strata=strata, mc_antithetic=antithetic
        )

    def with_frame(
        self, payload_bytes: float, overhead_bits: float | None = None
    ) -> "PaperParameters":
        """A copy with a different frame format."""
        return replace(
            self,
            frame_payload_bytes=payload_bytes,
            frame_overhead_bits=(
                self.frame_overhead_bits if overhead_bits is None else overhead_bits
            ),
        )
