"""Ablation sweeps: the studies the paper describes but omits for space.

Section 6.2 states that "results obtained for other values of these
parameters were similar"; Section 5.2 discusses the TTRT and frame-size
trade-offs qualitatively.  These sweeps regenerate that evidence:

* :func:`ttrt_sweep` — breakdown utilization of the TTP versus the TTRT
  value, overlaid with the sqrt-rule / half-min / numeric-optimal policies
  (Section 5.2's "sensitive to the TTRT value" claim).
* :func:`frame_size_sweep` — the PDP's responsiveness/overhead trade-off
  versus frame payload size (Section 4.2).
* :func:`period_sweep` — the Figure 1 comparison repeated for other mean
  periods and period ratios (Section 6.2's robustness claim).
* :func:`sba_comparison` — the local scheme against the other allocation
  schemes of the literature (Section 5.2's design choice).
* :func:`ring_size_sweep` — sensitivity to the number of stations.

Every sweep returns a :class:`SweepResult` that renders as a table and
exports rows for CSV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.montecarlo import average_breakdown_utilization
from repro.analysis.pdp import PDPVariant
from repro.analysis.sba import ALL_SCHEMES, SBAScheme, sba_breakdown_scale
from repro.analysis.ttrt import (
    FixedTTRT,
    HalfMinPeriodTTRT,
    OptimalTTRT,
    SqrtRuleTTRT,
)
from repro.experiments.config import PaperParameters
from repro.experiments.parallel import parallel_map
from repro.experiments.reporting import format_table
from repro.obs import timing
from repro.units import mbps

__all__ = [
    "SweepResult",
    "ttrt_sweep",
    "frame_size_sweep",
    "period_sweep",
    "sba_comparison",
    "ring_size_sweep",
]


@dataclass(frozen=True)
class SweepResult:
    """A generic sweep outcome: named columns and numeric rows."""

    name: str
    headers: tuple[str, ...]
    rows: tuple[tuple[object, ...], ...]

    def to_table(self) -> str:
        """Fixed-width rendering of the sweep."""
        return format_table(self.headers, self.rows)

    def column(self, header: str) -> list[object]:
        """All values of one named column."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]


def _ttrt_cell(shared, policy) -> tuple[float, float]:
    """One TTRT-policy estimate (module-level so workers can import it)."""
    parameters, bandwidth_mbps = shared
    analysis = parameters.ttp_analysis(bandwidth_mbps, policy)
    with timing.span(f"ttrt-sweep/{type(policy).__name__}"):
        result = average_breakdown_utilization(
            analysis,
            parameters.sampler(),
            mbps(bandwidth_mbps),
            parameters.monte_carlo_sets,
            np.random.default_rng(parameters.seed),
        )
    return result.mean, result.stderr


def ttrt_sweep(
    parameters: PaperParameters,
    bandwidth_mbps: float,
    ttrt_fractions: Sequence[float] = (0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 1.0),
    jobs: int | None = 1,
) -> SweepResult:
    """TTP breakdown utilization versus TTRT.

    ``ttrt_fractions`` are fractions of ``P_min / 2`` (the feasibility
    ceiling).  The sqrt-rule, half-min, and numeric-optimal policies are
    appended as labelled rows for comparison.
    """
    p_min = parameters.period_distribution().bounds[0]
    reference = parameters.ttp_analysis(bandwidth_mbps)
    total_overhead = (
        reference.delta + parameters.n_stations * reference.frame_overhead_time
    )
    labelled: list[tuple[object, str, object]] = [
        (FixedTTRT(fraction * p_min / 2.0), f"fixed({fraction:.2f})",
         fraction * p_min / 2.0)
        for fraction in ttrt_fractions
    ]
    labelled.append(
        (SqrtRuleTTRT(), "sqrt-rule", float(np.sqrt(total_overhead * p_min)))
    )
    labelled.append((HalfMinPeriodTTRT(), "half-min", p_min / 2.0))
    labelled.append((OptimalTTRT(), "optimal", "per-set"))
    estimates = parallel_map(
        _ttrt_cell,
        [policy for policy, _, _ in labelled],
        shared=(parameters, bandwidth_mbps),
        jobs=jobs,
        label="ttrt-sweep",
    )
    rows = [
        (label, ttrt_s, mean, stderr)
        for (_, label, ttrt_s), (mean, stderr) in zip(labelled, estimates)
    ]
    return SweepResult(
        name=f"ttrt-sweep@{bandwidth_mbps}Mbps",
        headers=("policy", "TTRT (s)", "avg breakdown util", "stderr"),
        rows=tuple(rows),
    )


def _frame_size_cell(shared, task) -> tuple[object, ...]:
    """One (payload size, variant) estimate of the frame-size sweep."""
    parameters, bandwidth_mbps = shared
    size, variant = task
    varied = parameters.with_frame(payload_bytes=size)
    with timing.span(f"frame-size-sweep/{size:g}B/{variant.value}"):
        result = average_breakdown_utilization(
            varied.pdp_analysis(bandwidth_mbps, variant),
            parameters.sampler(),
            mbps(bandwidth_mbps),
            varied.monte_carlo_sets,
            np.random.default_rng(varied.seed),
            rel_tol=1e-3,
        )
    return variant.value, size, result.mean, result.stderr


def frame_size_sweep(
    parameters: PaperParameters,
    bandwidth_mbps: float,
    payload_bytes: Sequence[float] = (16, 32, 64, 128, 256, 512, 1024),
    jobs: int | None = 1,
) -> SweepResult:
    """PDP breakdown utilization versus frame payload size (Section 4.2).

    Small frames approximate preemption better (less blocking) but pay the
    112-bit overhead more often; large frames amortize overhead but block
    high-priority messages longer.  The sweep exposes the resulting
    interior optimum.
    """
    rows = parallel_map(
        _frame_size_cell,
        [
            (size, variant)
            for size in payload_bytes
            for variant in (PDPVariant.STANDARD, PDPVariant.MODIFIED)
        ],
        shared=(parameters, bandwidth_mbps),
        jobs=jobs,
        label="frame-size-sweep",
    )
    return SweepResult(
        name=f"frame-size-sweep@{bandwidth_mbps}Mbps",
        headers=("variant", "payload (bytes)", "avg breakdown util", "stderr"),
        rows=tuple(rows),
    )


def _period_cell(shared, task) -> float:
    """One (period law, protocol) mean of the period sweep."""
    parameters, bandwidth_mbps = shared
    mean_period, ratio, protocol = task
    varied = parameters.with_periods(mean_period, ratio)
    if protocol == "pdp_standard":
        analysis = varied.pdp_analysis(bandwidth_mbps, PDPVariant.STANDARD)
    elif protocol == "pdp_modified":
        analysis = varied.pdp_analysis(bandwidth_mbps, PDPVariant.MODIFIED)
    else:
        analysis = varied.ttp_analysis(bandwidth_mbps)
    with timing.span(
        f"period-sweep/mp{mean_period:g}/r{ratio:g}/{protocol}"
    ):
        return average_breakdown_utilization(
            analysis,
            varied.sampler(),
            mbps(bandwidth_mbps),
            varied.monte_carlo_sets,
            np.random.default_rng(varied.seed),
            rel_tol=1e-3,
        ).mean


def period_sweep(
    parameters: PaperParameters,
    bandwidth_mbps: float,
    mean_periods_s: Sequence[float] = (0.05, 0.1, 0.2),
    ratios: Sequence[float] = (2.0, 10.0, 50.0),
    jobs: int | None = 1,
) -> SweepResult:
    """The three-protocol comparison across period distributions.

    Reproduces Section 6.2's claim that the qualitative comparison is
    stable across the period parameters.
    """
    grid = [
        (mean_period, ratio)
        for mean_period in mean_periods_s
        for ratio in ratios
    ]
    protocols = ("pdp_standard", "pdp_modified", "ttp")
    means = parallel_map(
        _period_cell,
        [(mp, ratio, protocol) for mp, ratio in grid for protocol in protocols],
        shared=(parameters, bandwidth_mbps),
        jobs=jobs,
        label="period-sweep",
    )
    rows = [
        (mp, ratio, *means[3 * i : 3 * i + 3])
        for i, (mp, ratio) in enumerate(grid)
    ]
    return SweepResult(
        name=f"period-sweep@{bandwidth_mbps}Mbps",
        headers=(
            "mean period (s)",
            "ratio",
            "IEEE 802.5",
            "Mod 802.5",
            "FDDI",
        ),
        rows=tuple(rows),
    )


def sba_comparison(
    parameters: PaperParameters,
    bandwidth_mbps: float,
    schemes: Sequence[SBAScheme] = ALL_SCHEMES,
) -> SweepResult:
    """Average breakdown utilization per SBA scheme at one bandwidth.

    All schemes are evaluated at the sqrt-rule TTRT over the same workload
    population, using the robust grid-scan saturation search (the
    proportional scheme's feasible region is not downward closed).
    """
    sampler = parameters.sampler()
    bw = mbps(bandwidth_mbps)
    analysis = parameters.ttp_analysis(bandwidth_mbps)
    rows: list[tuple[object, ...]] = []
    for scheme in schemes:
        rng = np.random.default_rng(parameters.seed)
        utilizations = []
        for message_set in sampler.sample_many(rng, parameters.monte_carlo_sets):
            ttrt = analysis.select_ttrt(message_set)
            scale = sba_breakdown_scale(
                scheme,
                message_set,
                ttrt,
                bw,
                analysis.frame_overhead_time,
                analysis.delta,
            )
            utilizations.append(
                message_set.scaled(scale).utilization(bw) if scale > 0 else 0.0
            )
        arr = np.asarray(utilizations)
        stderr = (
            float(np.std(arr, ddof=1) / np.sqrt(arr.size)) if arr.size > 1 else 0.0
        )
        rows.append((scheme.name, float(np.mean(arr)), stderr))
    return SweepResult(
        name=f"sba-comparison@{bandwidth_mbps}Mbps",
        headers=("scheme", "avg breakdown util", "stderr"),
        rows=tuple(rows),
    )


def _ring_size_cell(shared, task) -> float:
    """One (ring size, protocol) mean of the ring-size sweep."""
    parameters, bandwidth_mbps = shared
    n, protocol = task
    varied = parameters.scaled_down(n, parameters.monte_carlo_sets)
    if protocol == "pdp_standard":
        analysis = varied.pdp_analysis(bandwidth_mbps, PDPVariant.STANDARD)
    elif protocol == "pdp_modified":
        analysis = varied.pdp_analysis(bandwidth_mbps, PDPVariant.MODIFIED)
    else:
        analysis = varied.ttp_analysis(bandwidth_mbps)
    with timing.span(f"ring-size-sweep/n{n}/{protocol}"):
        return average_breakdown_utilization(
            analysis,
            varied.sampler(),
            mbps(bandwidth_mbps),
            varied.monte_carlo_sets,
            np.random.default_rng(varied.seed),
            rel_tol=1e-3,
        ).mean


def ring_size_sweep(
    parameters: PaperParameters,
    bandwidth_mbps: float,
    station_counts: Sequence[int] = (10, 25, 50, 100, 200),
    jobs: int | None = 1,
) -> SweepResult:
    """The three-protocol comparison versus the number of stations."""
    protocols = ("pdp_standard", "pdp_modified", "ttp")
    means = parallel_map(
        _ring_size_cell,
        [(n, protocol) for n in station_counts for protocol in protocols],
        shared=(parameters, bandwidth_mbps),
        jobs=jobs,
        label="ring-size-sweep",
    )
    rows = [
        (n, *means[3 * i : 3 * i + 3]) for i, n in enumerate(station_counts)
    ]
    return SweepResult(
        name=f"ring-size-sweep@{bandwidth_mbps}Mbps",
        headers=("stations", "IEEE 802.5", "Mod 802.5", "FDDI"),
        rows=tuple(rows),
    )
