"""Ablation sweeps: the studies the paper describes but omits for space.

Section 6.2 states that "results obtained for other values of these
parameters were similar"; Section 5.2 discusses the TTRT and frame-size
trade-offs qualitatively.  These sweeps regenerate that evidence:

* :func:`ttrt_sweep` — breakdown utilization of the TTP versus the TTRT
  value, overlaid with the sqrt-rule / half-min / numeric-optimal policies
  (Section 5.2's "sensitive to the TTRT value" claim).
* :func:`frame_size_sweep` — the PDP's responsiveness/overhead trade-off
  versus frame payload size (Section 4.2).
* :func:`period_sweep` — the Figure 1 comparison repeated for other mean
  periods and period ratios (Section 6.2's robustness claim).
* :func:`sba_comparison` — the local scheme against the other allocation
  schemes of the literature (Section 5.2's design choice).
* :func:`ring_size_sweep` — sensitivity to the number of stations.

Every sweep returns a :class:`SweepResult` that renders as a table and
exports rows for CSV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.montecarlo import average_breakdown_utilization
from repro.analysis.pdp import PDPVariant
from repro.analysis.sba import ALL_SCHEMES, SBAScheme, sba_breakdown_scale
from repro.analysis.ttrt import (
    FixedTTRT,
    HalfMinPeriodTTRT,
    OptimalTTRT,
    SqrtRuleTTRT,
)
from repro.experiments.config import PaperParameters
from repro.experiments.reporting import format_table
from repro.units import mbps

__all__ = [
    "SweepResult",
    "ttrt_sweep",
    "frame_size_sweep",
    "period_sweep",
    "sba_comparison",
    "ring_size_sweep",
]


@dataclass(frozen=True)
class SweepResult:
    """A generic sweep outcome: named columns and numeric rows."""

    name: str
    headers: tuple[str, ...]
    rows: tuple[tuple[object, ...], ...]

    def to_table(self) -> str:
        """Fixed-width rendering of the sweep."""
        return format_table(self.headers, self.rows)

    def column(self, header: str) -> list[object]:
        """All values of one named column."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]


def ttrt_sweep(
    parameters: PaperParameters,
    bandwidth_mbps: float,
    ttrt_fractions: Sequence[float] = (0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 1.0),
) -> SweepResult:
    """TTP breakdown utilization versus TTRT.

    ``ttrt_fractions`` are fractions of ``P_min / 2`` (the feasibility
    ceiling).  The sqrt-rule, half-min, and numeric-optimal policies are
    appended as labelled rows for comparison.
    """
    sampler = parameters.sampler()
    bw = mbps(bandwidth_mbps)
    p_min = parameters.period_distribution().bounds[0]
    rows: list[tuple[object, ...]] = []

    def estimate(policy, label: str, ttrt_s: float | str) -> None:
        analysis = parameters.ttp_analysis(bandwidth_mbps, policy)
        result = average_breakdown_utilization(
            analysis,
            sampler,
            bw,
            parameters.monte_carlo_sets,
            np.random.default_rng(parameters.seed),
        )
        rows.append((label, ttrt_s, result.mean, result.stderr))

    for fraction in ttrt_fractions:
        ttrt = fraction * p_min / 2.0
        estimate(FixedTTRT(ttrt), f"fixed({fraction:.2f})", ttrt)
    reference = parameters.ttp_analysis(bandwidth_mbps)
    total_overhead = (
        reference.delta + parameters.n_stations * reference.frame_overhead_time
    )
    estimate(SqrtRuleTTRT(), "sqrt-rule", float(np.sqrt(total_overhead * p_min)))
    estimate(HalfMinPeriodTTRT(), "half-min", p_min / 2.0)
    estimate(OptimalTTRT(), "optimal", "per-set")
    return SweepResult(
        name=f"ttrt-sweep@{bandwidth_mbps}Mbps",
        headers=("policy", "TTRT (s)", "avg breakdown util", "stderr"),
        rows=tuple(rows),
    )


def frame_size_sweep(
    parameters: PaperParameters,
    bandwidth_mbps: float,
    payload_bytes: Sequence[float] = (16, 32, 64, 128, 256, 512, 1024),
) -> SweepResult:
    """PDP breakdown utilization versus frame payload size (Section 4.2).

    Small frames approximate preemption better (less blocking) but pay the
    112-bit overhead more often; large frames amortize overhead but block
    high-priority messages longer.  The sweep exposes the resulting
    interior optimum.
    """
    sampler = parameters.sampler()
    bw = mbps(bandwidth_mbps)
    rows: list[tuple[object, ...]] = []
    for size in payload_bytes:
        varied = parameters.with_frame(payload_bytes=size)
        for variant in (PDPVariant.STANDARD, PDPVariant.MODIFIED):
            analysis = varied.pdp_analysis(bandwidth_mbps, variant)
            result = average_breakdown_utilization(
                analysis,
                sampler,
                bw,
                varied.monte_carlo_sets,
                np.random.default_rng(varied.seed),
                rel_tol=1e-3,
            )
            rows.append((variant.value, size, result.mean, result.stderr))
    return SweepResult(
        name=f"frame-size-sweep@{bandwidth_mbps}Mbps",
        headers=("variant", "payload (bytes)", "avg breakdown util", "stderr"),
        rows=tuple(rows),
    )


def period_sweep(
    parameters: PaperParameters,
    bandwidth_mbps: float,
    mean_periods_s: Sequence[float] = (0.05, 0.1, 0.2),
    ratios: Sequence[float] = (2.0, 10.0, 50.0),
) -> SweepResult:
    """The three-protocol comparison across period distributions.

    Reproduces Section 6.2's claim that the qualitative comparison is
    stable across the period parameters.
    """
    bw = mbps(bandwidth_mbps)
    rows: list[tuple[object, ...]] = []
    for mean_period in mean_periods_s:
        for ratio in ratios:
            varied = parameters.with_periods(mean_period, ratio)
            sampler = varied.sampler()
            estimates = []
            for analysis in (
                varied.pdp_analysis(bandwidth_mbps, PDPVariant.STANDARD),
                varied.pdp_analysis(bandwidth_mbps, PDPVariant.MODIFIED),
                varied.ttp_analysis(bandwidth_mbps),
            ):
                estimates.append(
                    average_breakdown_utilization(
                        analysis,
                        sampler,
                        bw,
                        varied.monte_carlo_sets,
                        np.random.default_rng(varied.seed),
                        rel_tol=1e-3,
                    ).mean
                )
            rows.append((mean_period, ratio, *estimates))
    return SweepResult(
        name=f"period-sweep@{bandwidth_mbps}Mbps",
        headers=(
            "mean period (s)",
            "ratio",
            "IEEE 802.5",
            "Mod 802.5",
            "FDDI",
        ),
        rows=tuple(rows),
    )


def sba_comparison(
    parameters: PaperParameters,
    bandwidth_mbps: float,
    schemes: Sequence[SBAScheme] = ALL_SCHEMES,
) -> SweepResult:
    """Average breakdown utilization per SBA scheme at one bandwidth.

    All schemes are evaluated at the sqrt-rule TTRT over the same workload
    population, using the robust grid-scan saturation search (the
    proportional scheme's feasible region is not downward closed).
    """
    sampler = parameters.sampler()
    bw = mbps(bandwidth_mbps)
    analysis = parameters.ttp_analysis(bandwidth_mbps)
    rows: list[tuple[object, ...]] = []
    for scheme in schemes:
        rng = np.random.default_rng(parameters.seed)
        utilizations = []
        for message_set in sampler.sample_many(rng, parameters.monte_carlo_sets):
            ttrt = analysis.select_ttrt(message_set)
            scale = sba_breakdown_scale(
                scheme,
                message_set,
                ttrt,
                bw,
                analysis.frame_overhead_time,
                analysis.delta,
            )
            utilizations.append(
                message_set.scaled(scale).utilization(bw) if scale > 0 else 0.0
            )
        arr = np.asarray(utilizations)
        stderr = (
            float(np.std(arr, ddof=1) / np.sqrt(arr.size)) if arr.size > 1 else 0.0
        )
        rows.append((scheme.name, float(np.mean(arr)), stderr))
    return SweepResult(
        name=f"sba-comparison@{bandwidth_mbps}Mbps",
        headers=("scheme", "avg breakdown util", "stderr"),
        rows=tuple(rows),
    )


def ring_size_sweep(
    parameters: PaperParameters,
    bandwidth_mbps: float,
    station_counts: Sequence[int] = (10, 25, 50, 100, 200),
) -> SweepResult:
    """The three-protocol comparison versus the number of stations."""
    bw = mbps(bandwidth_mbps)
    rows: list[tuple[object, ...]] = []
    for n in station_counts:
        varied = parameters.scaled_down(n, parameters.monte_carlo_sets)
        sampler = varied.sampler()
        estimates = []
        for analysis in (
            varied.pdp_analysis(bandwidth_mbps, PDPVariant.STANDARD),
            varied.pdp_analysis(bandwidth_mbps, PDPVariant.MODIFIED),
            varied.ttp_analysis(bandwidth_mbps),
        ):
            estimates.append(
                average_breakdown_utilization(
                    analysis,
                    sampler,
                    bw,
                    varied.monte_carlo_sets,
                    np.random.default_rng(varied.seed),
                    rel_tol=1e-3,
                ).mean
            )
        rows.append((n, *estimates))
    return SweepResult(
        name=f"ring-size-sweep@{bandwidth_mbps}Mbps",
        headers=("stations", "IEEE 802.5", "Mod 802.5", "FDDI"),
        rows=tuple(rows),
    )
