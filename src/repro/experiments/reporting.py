"""Plain-text reporting: aligned tables, ASCII line plots, CSV.

The environment has no plotting stack, so experiments render their output
the way 1990s systems papers were drafted: fixed-width tables and ASCII
charts.  Everything also exports to CSV for downstream plotting.
"""

from __future__ import annotations

import io
import math
from typing import Sequence

from repro.errors import ConfigurationError
from repro.obs import logging as obslog
from repro.obs import metrics as _metrics

__all__ = ["format_table", "ascii_plot", "write_csv", "format_csv"]

_LOG = obslog.get_logger("experiments.reporting")


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.4f}",
) -> str:
    """Render an aligned fixed-width table.

    Floats go through ``float_format``; everything else through ``str``.
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            if math.isnan(cell):
                return "nan"
            return float_format.format(cell)
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def ascii_plot(
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 72,
    height: int = 20,
    logx: bool = False,
    title: str = "",
) -> str:
    """Render one or more series as an ASCII scatter/line chart.

    Each series gets a distinct marker; later series overwrite earlier
    ones where they collide.  ``logx`` spaces the x axis logarithmically
    (Figure 1's bandwidth axis).
    """
    if not x or not series:
        raise ConfigurationError("ascii_plot needs data")
    markers = "*o+x#@%&"
    xs = [math.log10(v) for v in x] if logx else list(x)
    x_min, x_max = min(xs), max(xs)
    all_y = [v for ys in series.values() for v in ys if not math.isnan(v)]
    if not all_y:
        raise ConfigurationError("ascii_plot needs at least one finite y value")
    y_min, y_max = min(all_y), max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, ys) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for xv, yv in zip(xs, ys):
            if math.isnan(yv):
                continue
            col = round((xv - x_min) / (x_max - x_min) * (width - 1))
            row = round((yv - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = marker

    out = io.StringIO()
    if title:
        out.write(title + "\n")
    for index, name in enumerate(series):
        out.write(f"  {markers[index % len(markers)]} {name}\n")
    out.write(f"{y_max:8.3f} +" + "-" * width + "+\n")
    for line in grid:
        out.write(" " * 9 + "|" + "".join(line) + "|\n")
    out.write(f"{y_min:8.3f} +" + "-" * width + "+\n")
    left = f"{10 ** x_min:.3g}" if logx else f"{x_min:.3g}"
    right = f"{10 ** x_max:.3g}" if logx else f"{x_max:.3g}"
    out.write(" " * 10 + left + " " * max(1, width - len(left) - len(right)) + right + "\n")
    return out.getvalue()


def format_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render rows as simple CSV text (no quoting — numeric tables only)."""
    lines = [",".join(headers)]
    for row in rows:
        lines.append(",".join(f"{c:.6g}" if isinstance(c, float) else str(c) for c in row))
    return "\n".join(lines) + "\n"


def write_csv(
    path: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> None:
    """Write a numeric table to ``path`` as CSV."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(format_csv(headers, rows))
    _metrics.counter("reporting.csv_files_written").inc()
    _LOG.info(
        "wrote CSV %s (%d rows)",
        path,
        len(rows),
        extra={"artifact": str(path), "rows": len(rows)},
    )
