"""Figure 1: average breakdown utilization versus bandwidth.

The paper's single evaluation figure sweeps the link bandwidth from 1 to
1000 Mbps and plots the average breakdown utilization of three protocols:

* the standard IEEE 802.5 priority driven protocol,
* the modified IEEE 802.5 variant, and
* FDDI's timed token protocol.

For each bandwidth and protocol, random message sets are drawn from the
paper's distributions, each set is scaled to its saturation boundary, and
the saturated utilizations are averaged (see
:mod:`repro.analysis.montecarlo`).  The same RNG seed is used for every
protocol at every bandwidth, so the three curves are evaluated on the
*same* workload population — paired sampling, which sharpens the
cross-protocol comparison exactly as in the paper's methodology.

The shape assertions that define a successful reproduction live in
:meth:`Figure1Result.shape_report`:

1. both 802.5 curves first rise with bandwidth, peak, then fall;
2. the modified variant dominates the standard one everywhere;
3. the FDDI curve is (weakly) monotone increasing;
4. PDP beats TTP at the low end; TTP wins from some crossover onward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.montecarlo import (
    AverageBreakdownEstimate,
    StreamingBreakdownEstimate,
    average_breakdown_utilization,
    streaming_average_breakdown_utilization,
)
from repro.analysis.pdp import PDPVariant
from repro.errors import ConfigurationError
from repro.experiments.config import PaperParameters
from repro.experiments.parallel import parallel_map
from repro.experiments.reporting import ascii_plot, format_table
from repro.obs import timing
from repro.units import mbps

__all__ = [
    "FIGURE1_PROTOCOLS",
    "PAPER_BANDWIDTHS_MBPS",
    "Figure1Point",
    "Figure1Result",
    "run_figure1",
]

#: The three curves of Figure 1, in column order.
FIGURE1_PROTOCOLS: tuple[str, ...] = ("pdp_standard", "pdp_modified", "ttp")

#: Log-spaced bandwidth grid covering the paper's 1–1000 Mbps axis.
PAPER_BANDWIDTHS_MBPS: tuple[float, ...] = (
    1.0, 1.6, 2.5, 4.0, 6.3, 10.0, 16.0, 25.0, 40.0, 63.0,
    100.0, 160.0, 250.0, 400.0, 630.0, 1000.0,
)


@dataclass(frozen=True)
class Figure1Point:
    """One bandwidth sample of the three protocol curves."""

    bandwidth_mbps: float
    pdp_standard: "AverageBreakdownEstimate | StreamingBreakdownEstimate"
    pdp_modified: "AverageBreakdownEstimate | StreamingBreakdownEstimate"
    ttp: "AverageBreakdownEstimate | StreamingBreakdownEstimate"


@dataclass(frozen=True)
class Figure1Result:
    """The full Figure 1 dataset plus shape diagnostics."""

    points: tuple[Figure1Point, ...]
    parameters: PaperParameters

    # -- series access ------------------------------------------------------------

    @property
    def bandwidths(self) -> list[float]:
        """The swept bandwidths, Mbps."""
        return [p.bandwidth_mbps for p in self.points]

    def series(self, name: str) -> list[float]:
        """One curve by name: 'pdp_standard', 'pdp_modified', or 'ttp'."""
        return [getattr(p, name).mean for p in self.points]

    # -- shape diagnostics -----------------------------------------------------------

    def peak_bandwidth(self, name: str) -> float:
        """Bandwidth (Mbps) at which a curve attains its maximum."""
        values = self.series(name)
        return self.bandwidths[int(np.argmax(values))]

    def crossover_bandwidth(self) -> float | None:
        """First bandwidth where TTP overtakes the better PDP variant.

        None when TTP never overtakes (it always does on the paper grid).
        """
        ttp = self.series("ttp")
        pdp = [
            max(a, b)
            for a, b in zip(self.series("pdp_standard"), self.series("pdp_modified"))
        ]
        for bandwidth, t, p in zip(self.bandwidths, ttp, pdp):
            if t > p:
                return bandwidth
        return None

    def shape_report(self) -> dict[str, bool]:
        """The four shape properties of a faithful reproduction."""
        std = self.series("pdp_standard")
        mod = self.series("pdp_modified")
        ttp = self.series("ttp")
        std_peak = int(np.argmax(std))
        mod_peak = int(np.argmax(mod))
        eps = 1e-9
        return {
            "pdp_standard_rises_then_falls": (
                0 < std_peak < len(std) - 1
                and std[std_peak] > std[0] + eps
                and std[std_peak] > std[-1] + eps
            ),
            "pdp_modified_rises_then_falls": (
                0 < mod_peak < len(mod) - 1
                and mod[mod_peak] > mod[0] + eps
                and mod[mod_peak] > mod[-1] + eps
            ),
            "modified_dominates_standard": all(
                m >= s - 1e-6 for m, s in zip(mod, std)
            ),
            "ttp_monotone_increasing": all(
                b >= a - 1e-6 for a, b in zip(ttp, ttp[1:])
            ),
            "pdp_wins_low_bandwidth": any(
                max(m, s) > t + eps for m, s, t in zip(mod[:6], std[:6], ttp[:6])
            ),
            "ttp_wins_high_bandwidth": ttp[-1] > max(mod[-1], std[-1]) + eps,
        }

    # -- rendering ----------------------------------------------------------------

    #: Column names matching :meth:`rows`, reused by CSV writers so the
    #: artifact schema has one home.
    CSV_HEADERS = (
        "bandwidth_mbps",
        "pdp_standard",
        "pdp_modified",
        "ttp",
        "se_standard",
        "se_modified",
        "se_ttp",
        "deg_standard",
        "deg_modified",
        "deg_ttp",
    )

    def rows(self) -> list[list[object]]:
        """Table rows: bandwidth, the three means, their stderrs, and the
        per-protocol degenerate-set counts (sets with no finite positive
        breakdown point — anomalous cells show up here, not just in the
        mean they drag down)."""
        return [
            [
                p.bandwidth_mbps,
                p.pdp_standard.mean,
                p.pdp_modified.mean,
                p.ttp.mean,
                p.pdp_standard.stderr,
                p.pdp_modified.stderr,
                p.ttp.stderr,
                p.pdp_standard.degenerate_sets,
                p.pdp_modified.degenerate_sets,
                p.ttp.degenerate_sets,
            ]
            for p in self.points
        ]

    def to_table(self) -> str:
        """Fixed-width table of the three curves."""
        return format_table(
            [
                "BW (Mbps)",
                "IEEE 802.5",
                "Mod 802.5",
                "FDDI",
                "se(802.5)",
                "se(mod)",
                "se(fddi)",
                "deg(802.5)",
                "deg(mod)",
                "deg(fddi)",
            ],
            self.rows(),
        )

    def to_ascii_plot(self) -> str:
        """The Figure 1 chart as ASCII art (log bandwidth axis)."""
        return ascii_plot(
            self.bandwidths,
            {
                "IEEE 802.5": self.series("pdp_standard"),
                "Modified 802.5": self.series("pdp_modified"),
                "FDDI": self.series("ttp"),
            },
            logx=True,
            title="Figure 1: Average breakdown utilization vs bandwidth",
        )


def _figure1_cell(
    params: PaperParameters, task: tuple[float, str, float]
) -> "AverageBreakdownEstimate | StreamingBreakdownEstimate":
    """One (bandwidth, protocol) cell of the Figure 1 grid.

    Module-level so worker processes can import it by name; self-seeding
    (a fresh generator from ``params.seed``) so the estimate is identical
    no matter which worker runs it or in what order — the paired-sampling
    guarantee the figure's cross-protocol comparison rests on.

    With ``params.mc_eps`` set the cell runs the accuracy-targeted
    streaming estimator instead of fixed-N sampling: ``monte_carlo_sets``
    becomes the chunk size and the cell stops at the target CI half-width.
    Chunks derive from ``params.seed`` exactly like the fixed path, so the
    three protocols still see identical workload chunks (paired sampling
    — and with it, paired stratification/antithetic twins — is preserved).
    """
    bandwidth, protocol, rel_tol = task
    if protocol == "pdp_standard":
        analysis = params.pdp_analysis(bandwidth, PDPVariant.STANDARD)
    elif protocol == "pdp_modified":
        analysis = params.pdp_analysis(bandwidth, PDPVariant.MODIFIED)
    elif protocol == "ttp":
        analysis = params.ttp_analysis(bandwidth)
    else:  # pragma: no cover - protocol list is closed
        raise ConfigurationError(f"unknown Figure 1 protocol: {protocol!r}")
    with timing.span(f"figure1/bw{bandwidth:g}/{protocol}"):
        if params.mc_eps is not None:
            return streaming_average_breakdown_utilization(
                analysis,
                params.sampler(),
                mbps(bandwidth),
                seed=params.seed,
                eps=params.mc_eps,
                chunk_sets=params.monte_carlo_sets,
                max_sets=params.monte_carlo_sets * 64,
                strata=params.mc_strata,
                antithetic=params.mc_antithetic,
                rel_tol=rel_tol,
            )
        return average_breakdown_utilization(
            analysis,
            params.sampler(),
            mbps(bandwidth),
            params.monte_carlo_sets,
            np.random.default_rng(params.seed),
            rel_tol=rel_tol,
        )


def run_figure1(
    parameters: PaperParameters | None = None,
    bandwidths_mbps: Sequence[float] = PAPER_BANDWIDTHS_MBPS,
    rel_tol: float = 1e-3,
    jobs: int | None = 1,
) -> Figure1Result:
    """Regenerate Figure 1.

    Args:
        parameters: operating conditions (paper defaults when None).
        bandwidths_mbps: the bandwidth grid to sweep.
        rel_tol: saturation-search tolerance for the PDP bisection.
        jobs: worker processes for the (bandwidth × protocol) grid;
            1 runs sequentially in-process, 0 uses all cores.  The cells
            are independent and self-seeding, so every ``jobs`` value
            produces the identical result.
    """
    params = parameters if parameters is not None else PaperParameters()
    tasks = [
        (bandwidth, protocol, rel_tol)
        for bandwidth in bandwidths_mbps
        for protocol in FIGURE1_PROTOCOLS
    ]
    estimates = parallel_map(
        _figure1_cell, tasks, shared=params, jobs=jobs, label="figure1"
    )
    points = [
        Figure1Point(
            bandwidth_mbps=bandwidth,
            **dict(zip(FIGURE1_PROTOCOLS, estimates[3 * i : 3 * i + 3])),
        )
        for i, bandwidth in enumerate(bandwidths_mbps)
    ]
    return Figure1Result(points=tuple(points), parameters=params)
