"""Breakdown utilization under a lossy medium: the ``loss-sweep`` experiment.

The paper's comparison assumes a fault-free medium.  This sweep repeats
the Figure-1-style Monte Carlo estimate with the retransmission-aware
criteria of :mod:`repro.faults.analysis` across a range of *loss
fractions* — the fraction of medium time the token claim/recovery process
can consume when ring faults arrive at their rate bound
(``loss_fraction = rate × T_rec``; see
:func:`repro.faults.plan.rate_for_loss_fraction`).  At fraction 0 the
fault-aware tests are identical to the original theorems, so the first
row doubles as a baseline cross-check; as the fraction grows, breakdown
utilization degrades for both protocols — the PDP pays the recovery
budget per priority level, the TTP loses whole token visits.

Outputs: a :class:`~repro.experiments.sweeps.SweepResult` table, an ASCII
breakdown-utilization-versus-loss-fraction figure for both protocols, and
a summarized-canary document (``BENCH_loss.json``) whose per-cell
``extra_info`` carries the mean utilizations ``tools/verify_smoke.py``
guards for monotone degradation.

Every cell reuses the paired-sampling design: the same seed — hence the
same message sets — at every loss fraction and for both protocols, so
the curves are directly comparable and deterministic under ``--jobs``.
"""

from __future__ import annotations

import datetime
import platform
import time

import numpy as np

from repro.analysis.pdp import PDPVariant
from repro.experiments.config import PaperParameters
from repro.experiments.parallel import parallel_map
from repro.experiments.reporting import ascii_plot
from repro.experiments.sweeps import SweepResult
from repro.faults.analysis import (
    FaultBudget,
    fault_aware_breakdown_scale,
    pdp_fault_aware_schedulable,
    ttp_fault_aware_schedulable,
)
from repro.faults.plan import rate_for_loss_fraction
from repro.obs import timing
from repro.obs.benchjson import BENCH_SCHEMA_VERSION, cpu_info
from repro.units import mbps

__all__ = [
    "DEFAULT_LOSS_FRACTIONS",
    "DEFAULT_RECOVERY_S",
    "loss_sweep",
    "loss_figure",
    "loss_bench_document",
]

#: Loss fractions swept by default; 0 pins the fault-free baseline.
DEFAULT_LOSS_FRACTIONS: tuple[float, ...] = (0.0, 0.005, 0.01, 0.02, 0.05, 0.1)

#: Token claim/recovery latency charged per ring fault (1 ms — the order
#: of an 802.5 claim-token exchange at the paper's ring scale).
DEFAULT_RECOVERY_S = 1e-3

#: Sweep columns, shared with the CSV export.
HEADERS: tuple[str, ...] = (
    "loss fraction",
    "loss rate (Hz)",
    "IEEE 802.5",
    "stderr",
    "FDDI",
    "stderr",
)


def _loss_cell(shared, task) -> tuple[float, float, float]:
    """One (loss fraction, protocol) estimate: (mean, stderr, seconds)."""
    parameters, bandwidth_mbps, recovery_time_s = shared
    loss_fraction, protocol = task
    budget = FaultBudget(
        token_loss_rate_hz=(
            rate_for_loss_fraction(loss_fraction, recovery_time_s)
            if loss_fraction > 0.0
            else 0.0
        ),
        recovery_time_s=recovery_time_s,
    )
    if protocol == "pdp":
        analysis = parameters.pdp_analysis(bandwidth_mbps, PDPVariant.STANDARD)

        def accepts(message_set):
            return pdp_fault_aware_schedulable(analysis, message_set, budget)

    else:
        analysis = parameters.ttp_analysis(bandwidth_mbps)

        def accepts(message_set):
            return ttp_fault_aware_schedulable(analysis, message_set, budget)

    bandwidth = mbps(bandwidth_mbps)
    rng = np.random.default_rng(parameters.seed)
    sampler = parameters.sampler()
    utilizations: list[float] = []
    started = time.perf_counter()
    with timing.span(f"loss-sweep/{protocol}/l{loss_fraction:g}"):
        for message_set in sampler.sample_many(rng, parameters.monte_carlo_sets):
            scale = fault_aware_breakdown_scale(accepts, message_set, rel_tol=1e-3)
            utilizations.append(
                message_set.scaled(scale).utilization(bandwidth)
                if scale > 0
                else 0.0
            )
    elapsed = time.perf_counter() - started
    arr = np.asarray(utilizations)
    stderr = (
        float(np.std(arr, ddof=1) / np.sqrt(arr.size)) if arr.size > 1 else 0.0
    )
    return float(arr.mean()), stderr, elapsed


def loss_sweep(
    parameters: PaperParameters,
    bandwidth_mbps: float,
    loss_fractions: tuple[float, ...] = DEFAULT_LOSS_FRACTIONS,
    recovery_time_s: float = DEFAULT_RECOVERY_S,
    jobs: int | None = 1,
) -> tuple[SweepResult, dict]:
    """Average breakdown utilization versus loss fraction, both protocols.

    Returns ``(result, cell_seconds)`` where ``cell_seconds`` maps
    ``(loss_fraction, protocol)`` to that cell's wall time — the bench
    document reports it so the canary tracks sweep cost too.
    """
    protocols = ("pdp", "ttp")
    grid = [
        (fraction, protocol)
        for fraction in loss_fractions
        for protocol in protocols
    ]
    cells = parallel_map(
        _loss_cell,
        grid,
        shared=(parameters, bandwidth_mbps, recovery_time_s),
        jobs=jobs,
        label="loss-sweep",
    )
    by_task = dict(zip(grid, cells))
    rows = [
        (
            fraction,
            rate_for_loss_fraction(fraction, recovery_time_s)
            if fraction > 0.0
            else 0.0,
            by_task[(fraction, "pdp")][0],
            by_task[(fraction, "pdp")][1],
            by_task[(fraction, "ttp")][0],
            by_task[(fraction, "ttp")][1],
        )
        for fraction in loss_fractions
    ]
    result = SweepResult(
        name=(
            f"loss-sweep@{bandwidth_mbps}Mbps "
            f"(T_rec={recovery_time_s:g}s, token-loss budget)"
        ),
        headers=HEADERS,
        rows=tuple(rows),
    )
    cell_seconds = {task: cell[2] for task, cell in by_task.items()}
    return result, cell_seconds


def loss_figure(result: SweepResult) -> str:
    """The breakdown-utilization-versus-loss-fraction figure, ASCII."""
    fractions = [float(value) for value in result.column("loss fraction")]
    return ascii_plot(
        fractions,
        {
            "IEEE 802.5 (PDP, fault-aware)": [
                float(v) for v in result.column("IEEE 802.5")
            ],
            "FDDI (TTP, fault-aware)": [
                float(v) for v in result.column("FDDI")
            ],
        },
        title="breakdown utilization vs loss fraction",
    )


def _cell_stats(seconds: float) -> dict:
    """Single-measurement stats block (the sweep runs each cell once)."""
    return {
        "min": seconds,
        "max": seconds,
        "mean": seconds,
        "stddev": 0.0,
        "median": seconds,
        "iqr": 0.0,
        "q1": seconds,
        "q3": seconds,
        "ops": 1.0 / seconds if seconds > 0 else None,
        "total": seconds,
        "rounds": 1,
        "iterations": 1,
    }


def loss_bench_document(
    result: SweepResult,
    cell_seconds: dict,
    parameters: PaperParameters,
    bandwidth_mbps: float,
    recovery_time_s: float,
) -> dict:
    """The ``BENCH_loss.json`` canary document.

    One benchmark entry per (protocol, loss fraction) cell; the mean
    breakdown utilization and its stderr ride in ``extra_info`` so the
    verify guard can assert the loss-degradation shape (monotone
    non-increasing, positive fault-free baseline) without re-running the
    sweep.
    """
    columns = {"pdp": ("IEEE 802.5", 3), "ttp": ("FDDI", 5)}
    benchmarks = []
    for protocol, (column, stderr_index) in columns.items():
        for row in result.rows:
            fraction = float(row[0])
            benchmarks.append(
                {
                    "group": "loss",
                    "name": f"{protocol}_loss_{fraction:g}",
                    "fullname": (
                        "repro.experiments.loss_sweep::"
                        f"{protocol}_loss_{fraction:g}"
                    ),
                    "params": {
                        "protocol": protocol,
                        "loss_fraction": fraction,
                        "recovery_time_s": recovery_time_s,
                        "bandwidth_mbps": bandwidth_mbps,
                        "n_stations": parameters.n_stations,
                        "monte_carlo_sets": parameters.monte_carlo_sets,
                        "seed": parameters.seed,
                    },
                    "extra_info": {
                        "mean_breakdown_utilization": float(
                            row[result.headers.index(column)]
                        ),
                        "stderr": float(row[stderr_index]),
                        "loss_rate_hz": float(row[1]),
                    },
                    "stats": _cell_stats(
                        float(cell_seconds[(fraction, protocol)])
                    ),
                }
            )
    uname = platform.uname()
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "datetime": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "pytest_benchmark_version": None,
        "commit_info": None,
        "machine": {
            "node": uname.node,
            "machine": uname.machine,
            "system": uname.system,
            "release": uname.release,
            "python_version": platform.python_version(),
            "cpu": cpu_info(arch=uname.machine),
        },
        "benchmarks": benchmarks,
    }
