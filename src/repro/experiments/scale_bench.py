"""Million-stream scale benchmark (``make bench-scale`` -> BENCH_scale.json).

Two performance claims of the columnar engine are tracked as a canary:

1. **Columnar throughput.**  One process builds a :class:`StreamTable` of
   a million streams (periods drawn from a small catalogue of distinct
   values, the regime the grouped exact test is built for), orders it
   rate-monotonically, runs the full Theorem 4.1 exact test and the
   closed-form TTP saturation scale — and the whole pipeline is timed.
   The same pipeline over object-path :class:`MessageSet` streams is
   timed at a much smaller size (the dense exact-test matrix is
   O(points x streams); at a million streams it would not fit in
   memory), and the per-stream throughput ratio is reported.  The small
   object baseline is *generous* to the object path — its per-stream
   cost grows with set size — so the reported speedup is a floor.

2. **Streaming Monte Carlo efficiency.**  The accuracy-targeted
   estimator runs twice to the same CI half-width target from the same
   seed: once plain (chunk ``k`` bit-identical to the fixed-N sample
   stream, so its evaluation count is what fixed-N sampling would need
   to certify the same accuracy) and once with Latin-hypercube period
   stratification plus antithetic pairing.  The evaluations-to-target
   ratio quantifies the variance reduction.

The document follows the summarized pytest-benchmark schema of
:mod:`repro.obs.benchjson` (``stats.mean`` = seconds per stream,
``stats.ops`` = streams per second), so ``tools/bench_trend.py`` tracks
it across PRs like every other ``BENCH_*.json`` canary.
"""

from __future__ import annotations

import datetime
import platform
import time
from dataclasses import dataclass

import numpy as np

from repro.analysis.montecarlo import (
    StreamingBreakdownEstimate,
    streaming_average_breakdown_utilization,
)
from repro.analysis.pdp import PDPVariant
from repro.errors import ConfigurationError
from repro.experiments.config import PaperParameters
from repro.messages.generators import MessageSetSampler
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.messages.table import StreamTable
from repro.obs.benchjson import BENCH_SCHEMA_VERSION, cpu_info
from repro.units import mbps

__all__ = [
    "ScaleBenchResult",
    "run_scale_bench",
    "scale_bench_document",
]


@dataclass(frozen=True)
class ScaleBenchResult:
    """Measurements of one scale-benchmark run."""

    n_streams: int
    distinct_periods: int
    columnar_seconds: float
    columnar_schedulable: bool
    columnar_ttp_scale: float
    baseline_streams: int
    object_seconds: float
    object_schedulable: bool
    object_ttp_scale: float
    naive: StreamingBreakdownEstimate
    naive_seconds: float
    vr: StreamingBreakdownEstimate
    vr_seconds: float
    mc_eps: float
    mc_strata: int
    mc_antithetic: bool
    bandwidth_mbps: float
    seed: int

    @property
    def columnar_streams_per_sec(self) -> float:
        """Columnar pipeline throughput, streams analysed per second."""
        return self.n_streams / self.columnar_seconds

    @property
    def object_streams_per_sec(self) -> float:
        """Object-path pipeline throughput, streams analysed per second."""
        return self.baseline_streams / self.object_seconds

    @property
    def speedup(self) -> float:
        """Columnar over object per-stream throughput ratio."""
        return self.columnar_streams_per_sec / self.object_streams_per_sec

    @property
    def mc_eval_ratio(self) -> float:
        """Plain-sampling evaluations over variance-reduced evaluations.

        The plain run consumes the fixed-N sample stream, so this is the
        factor by which stratified + antithetic sampling shrinks the
        number of breakdown evaluations needed to certify the target CI.
        """
        return self.naive.evaluations / self.vr.evaluations

    def summary(self) -> str:
        """Console rendering of the headline numbers."""
        lines = [
            f"columnar: {self.n_streams:,} streams analysed in "
            f"{self.columnar_seconds:.3f}s "
            f"({self.columnar_streams_per_sec:,.0f} streams/s)",
            f"object:   {self.baseline_streams:,} streams analysed in "
            f"{self.object_seconds:.3f}s "
            f"({self.object_streams_per_sec:,.0f} streams/s)",
            f"speedup:  {self.speedup:,.1f}x per-stream throughput",
            f"mc naive: {self.naive.evaluations} evaluations to "
            f"half-width <= {self.mc_eps:g} "
            f"(mean {self.naive.mean:.4f}, converged={self.naive.converged})",
            f"mc vr:    {self.vr.evaluations} evaluations "
            f"(strata={self.mc_strata}, antithetic={self.mc_antithetic}) "
            f"(mean {self.vr.mean:.4f}, converged={self.vr.converged})",
            f"mc ratio: {self.mc_eval_ratio:.2f}x fewer evaluations "
            "to the same accuracy target",
        ]
        return "\n".join(lines)


def _draw_workload(
    rng: np.random.Generator,
    n_streams: int,
    catalogue: np.ndarray,
    bandwidth_bps: float,
    target_utilization: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Periods (from the catalogue) and payloads scaled to a utilization
    that keeps the exact test iterating real scheduling points instead of
    trivially rejecting a wildly overloaded set."""
    periods = catalogue[rng.integers(0, catalogue.size, size=n_streams)]
    weights = 1.0 - rng.uniform(0.0, 1.0, size=n_streams)
    raw_utilization = float(np.sum(weights / periods)) / bandwidth_bps
    payloads = weights * (target_utilization / raw_utilization)
    return periods, payloads


def run_scale_bench(
    parameters: PaperParameters | None = None,
    *,
    n_streams: int = 1_000_000,
    baseline_streams: int = 512,
    distinct_periods: int = 64,
    bandwidth_mbps: float = 16.0,
    target_utilization: float = 0.5,
    mc_streams: int = 20,
    mc_eps: float = 5e-4,
    mc_chunk_sets: int = 16,
    mc_min_chunks: int = 8,
    mc_max_sets: int = 4096,
    mc_strata: int = 8,
    mc_antithetic: bool = False,
) -> ScaleBenchResult:
    """Run both scale measurements and return their results.

    Args:
        parameters: operating conditions (paper defaults when None); the
            period distribution and seed come from here.
        n_streams: columnar set size (the million-stream claim).
        baseline_streams: object-path set size (kept small because the
            dense exact-test matrix grows with streams x points; small is
            *favourable* to the baseline's per-stream cost).
        distinct_periods: period-catalogue size — the grouped exact test
            is sized by distinct periods, not streams.
        bandwidth_mbps: link bandwidth for both analyses.
        target_utilization: workload utilization the payloads are scaled
            to, so the exact test walks real scheduling points.
        mc_streams: streams per sampled set in the Monte Carlo
            comparison (small so the comparison finishes in seconds).
        mc_eps: CI half-width target both estimator runs must reach.
        mc_chunk_sets: sets per streaming chunk.
        mc_min_chunks: chunks folded before the stopping rule may fire —
            raised above the estimator's default so the early chunk-std
            estimate (4 points is a coin toss) does not stop either run
            by luck and wash out the comparison.
        mc_max_sets: evaluation cap per estimator run.
        mc_strata: Latin-hypercube strata for the variance-reduced run.
        mc_antithetic: antithetic pairing for the variance-reduced run.
            Off by default: for *breakdown utilization* the response is
            not monotone in the periods, so the period-reflected twin is
            nearly uncorrelated with its base and the pairing buys
            nothing here (stratification is what carries the reduction);
            the knob stays for workloads where it does help.
    """
    params = parameters if parameters is not None else PaperParameters()
    if n_streams < 1 or baseline_streams < 1:
        raise ConfigurationError("stream counts must be positive")
    if distinct_periods < 1:
        raise ConfigurationError(
            f"need at least one distinct period, got {distinct_periods!r}"
        )
    bandwidth_bps = mbps(bandwidth_mbps)
    low, high = params.period_distribution().bounds
    catalogue = np.linspace(low, high, distinct_periods)

    pdp = params.pdp_analysis(bandwidth_mbps, PDPVariant.STANDARD)
    ttp = params.ttp_analysis(bandwidth_mbps)

    # -- columnar pipeline: build + order + exact RM + TTP saturation -----
    rng = np.random.default_rng([params.seed, 1])
    periods, payloads = _draw_workload(
        rng, n_streams, catalogue, bandwidth_bps, target_utilization
    )
    started = time.perf_counter()
    table = StreamTable(periods, payloads)
    ordered = table.rate_monotonic()
    columnar_verdict = bool(pdp.is_schedulable(ordered))
    columnar_scale = float(ttp.saturation_scale(ordered))
    columnar_seconds = time.perf_counter() - started

    # -- object pipeline: the same steps through stream objects -----------
    rng = np.random.default_rng([params.seed, 2])
    periods, payloads = _draw_workload(
        rng, baseline_streams, catalogue, bandwidth_bps, target_utilization
    )
    started = time.perf_counter()
    message_set = MessageSet(
        SynchronousStream(period_s=float(p), payload_bits=float(c), station=i)
        for i, (p, c) in enumerate(zip(periods.tolist(), payloads.tolist()))
    )
    ordered_set = message_set.rate_monotonic()
    object_verdict = bool(pdp.is_schedulable(ordered_set))
    object_scale = float(ttp.saturation_scale(ordered_set))
    object_seconds = time.perf_counter() - started

    # -- streaming Monte Carlo: plain versus variance-reduced -------------
    sampler = MessageSetSampler(
        n_streams=mc_streams, periods=params.period_distribution()
    )
    started = time.perf_counter()
    naive = streaming_average_breakdown_utilization(
        pdp,
        sampler,
        bandwidth_bps,
        seed=params.seed,
        eps=mc_eps,
        chunk_sets=mc_chunk_sets,
        min_chunks=mc_min_chunks,
        max_sets=mc_max_sets,
    )
    naive_seconds = time.perf_counter() - started
    started = time.perf_counter()
    vr = streaming_average_breakdown_utilization(
        pdp,
        sampler,
        bandwidth_bps,
        seed=params.seed,
        eps=mc_eps,
        chunk_sets=mc_chunk_sets,
        min_chunks=mc_min_chunks,
        max_sets=mc_max_sets,
        strata=mc_strata,
        antithetic=mc_antithetic,
    )
    vr_seconds = time.perf_counter() - started

    return ScaleBenchResult(
        n_streams=n_streams,
        distinct_periods=distinct_periods,
        columnar_seconds=columnar_seconds,
        columnar_schedulable=columnar_verdict,
        columnar_ttp_scale=columnar_scale,
        baseline_streams=baseline_streams,
        object_seconds=object_seconds,
        object_schedulable=object_verdict,
        object_ttp_scale=object_scale,
        naive=naive,
        naive_seconds=naive_seconds,
        vr=vr,
        vr_seconds=vr_seconds,
        mc_eps=mc_eps,
        mc_strata=mc_strata,
        mc_antithetic=mc_antithetic,
        bandwidth_mbps=bandwidth_mbps,
        seed=params.seed,
    )


def _throughput_stats(seconds: float, units: int) -> dict:
    """Single-measurement stats block in per-unit seconds (ops = units/s)."""
    per_unit = seconds / units
    return {
        "min": per_unit,
        "max": per_unit,
        "mean": per_unit,
        "stddev": 0.0,
        "median": per_unit,
        "iqr": 0.0,
        "q1": per_unit,
        "q3": per_unit,
        "ops": units / seconds if seconds > 0 else None,
        "total": seconds,
        "rounds": 1,
        "iterations": 1,
    }


def _machine_block() -> dict:
    uname = platform.uname()
    return {
        "node": uname.node,
        "machine": uname.machine,
        "system": uname.system,
        "release": uname.release,
        "python_version": platform.python_version(),
        "cpu": cpu_info(arch=uname.machine),
    }


def scale_bench_document(result: ScaleBenchResult) -> dict:
    """The BENCH_scale.json payload for one run.

    Throughput entries report per-stream seconds (``ops`` = streams/s);
    Monte Carlo entries report per-evaluation seconds.  The headline
    ratios — columnar speedup and variance-reduction factor — ride in
    ``extra_info`` of the columnar and ``mc_streaming_vr`` entries.
    """
    shared = {
        "bandwidth_mbps": result.bandwidth_mbps,
        "seed": result.seed,
    }
    benchmarks = [
        {
            "group": "scale",
            "name": f"columnar_analyze_{result.n_streams}",
            "fullname": f"scale_bench::columnar_analyze_{result.n_streams}",
            "params": None,
            "extra_info": {
                **shared,
                "n_streams": result.n_streams,
                "distinct_periods": result.distinct_periods,
                "streams_per_sec": result.columnar_streams_per_sec,
                "speedup_vs_object": result.speedup,
                "schedulable": result.columnar_schedulable,
                "ttp_saturation_scale": result.columnar_ttp_scale,
            },
            "stats": _throughput_stats(result.columnar_seconds, result.n_streams),
        },
        {
            "group": "scale",
            "name": f"object_analyze_{result.baseline_streams}",
            "fullname": f"scale_bench::object_analyze_{result.baseline_streams}",
            "params": None,
            "extra_info": {
                **shared,
                "n_streams": result.baseline_streams,
                "distinct_periods": result.distinct_periods,
                "streams_per_sec": result.object_streams_per_sec,
                "schedulable": result.object_schedulable,
                "ttp_saturation_scale": result.object_ttp_scale,
            },
            "stats": _throughput_stats(
                result.object_seconds, result.baseline_streams
            ),
        },
        {
            "group": "mc",
            "name": "mc_streaming_naive",
            "fullname": "scale_bench::mc_streaming_naive",
            "params": None,
            "extra_info": {
                **shared,
                "eps": result.mc_eps,
                "strata": 1,
                "antithetic": False,
                "evaluations": result.naive.evaluations,
                "mean": result.naive.mean,
                "half_width": result.naive.half_width,
                "converged": result.naive.converged,
            },
            "stats": _throughput_stats(
                result.naive_seconds, result.naive.evaluations
            ),
        },
        {
            "group": "mc",
            "name": "mc_streaming_vr",
            "fullname": "scale_bench::mc_streaming_vr",
            "params": None,
            "extra_info": {
                **shared,
                "eps": result.mc_eps,
                "strata": result.mc_strata,
                "antithetic": result.mc_antithetic,
                "evaluations": result.vr.evaluations,
                "mean": result.vr.mean,
                "half_width": result.vr.half_width,
                "converged": result.vr.converged,
                "eval_ratio_vs_naive": result.mc_eval_ratio,
            },
            "stats": _throughput_stats(result.vr_seconds, result.vr.evaluations),
        },
    ]
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "datetime": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "pytest_benchmark_version": None,
        "commit_info": None,
        "machine": _machine_block(),
        "benchmarks": benchmarks,
    }
