"""Aggregate-throughput experiment (the abstract's secondary objective).

The paper's opening sentence sets two goals: *guarantee the deadlines of
synchronous messages* **while sustaining a high aggregate throughput**.
The schedulability analyses answer the first; this experiment measures the
second with the simulators: configure each protocol with a synchronous
workload its theorem certifies, flood every station with asynchronous
traffic, and measure how the medium time divides between synchronous
payload, asynchronous payload, and protocol overhead.

A protocol with a low breakdown utilization can still be a fine network if
it converts the spare bandwidth into asynchronous goodput; this sweep
quantifies that conversion and confirms both protocols do (neither idles
the medium), with the division shifting exactly as the Figure 1 overhead
story predicts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.pdp import PDPVariant
from repro.errors import ConfigurationError
from repro.experiments.config import PaperParameters
from repro.experiments.reporting import format_table
from repro.sim.pdp_sim import PDPRingSimulator, PDPSimConfig, TokenWalkModel
from repro.sim.ttp_sim import TTPRingSimulator, TTPSimConfig
from repro.units import mbps

__all__ = ["ThroughputPoint", "ThroughputResult", "throughput_experiment"]


@dataclass(frozen=True)
class ThroughputPoint:
    """Medium-time division for one protocol at one operating point.

    All values are fractions of simulated time.
    """

    protocol: str
    bandwidth_mbps: float
    sync_utilization: float
    async_utilization: float
    overhead_fraction: float
    deadline_misses: int

    @property
    def goodput(self) -> float:
        """Synchronous + asynchronous payload-carrying fraction."""
        return self.sync_utilization + self.async_utilization


@dataclass(frozen=True)
class ThroughputResult:
    """All protocols across the bandwidth grid."""

    points: tuple[ThroughputPoint, ...]

    def for_protocol(self, protocol: str) -> list[ThroughputPoint]:
        """Points of one protocol, in bandwidth order."""
        return [p for p in self.points if p.protocol == protocol]

    def to_table(self) -> str:
        """Fixed-width rendering."""
        return format_table(
            ["protocol", "BW (Mbps)", "sync", "async", "overhead", "misses"],
            [
                [
                    p.protocol,
                    p.bandwidth_mbps,
                    p.sync_utilization,
                    p.async_utilization,
                    p.overhead_fraction,
                    p.deadline_misses,
                ]
                for p in self.points
            ],
        )


def throughput_experiment(
    parameters: PaperParameters,
    bandwidths_mbps: tuple[float, ...] = (4.0, 16.0, 100.0),
    sync_load_fraction: float = 0.5,
    duration_s: float = 1.0,
    seed: int = 0,
) -> ThroughputResult:
    """Measure medium-time division under guaranteed synchronous load.

    At each bandwidth the synchronous workload is a random set rescaled to
    ``sync_load_fraction`` of that protocol's breakdown point (so the
    deadline guarantee holds by a 2x margin at the default), and the
    simulators run with saturating asynchronous sources.

    Protocols whose guaranteed region is empty at a bandwidth (breakdown
    scale 0) are skipped at that point.
    """
    if not 0.0 < sync_load_fraction < 1.0:
        raise ConfigurationError(
            f"sync load fraction must be in (0, 1), got {sync_load_fraction!r}"
        )
    sampler = parameters.sampler()
    points: list[ThroughputPoint] = []

    for bandwidth in bandwidths_mbps:
        bw_bps = mbps(bandwidth)
        workload = sampler.sample(np.random.default_rng(seed))

        # --- priority driven protocol (modified variant) -------------------
        pdp = parameters.pdp_analysis(bandwidth, PDPVariant.MODIFIED)
        from repro.analysis.breakdown import breakdown_scale

        scale, _ = breakdown_scale(workload, pdp, rel_tol=1e-3)
        if 0.0 < scale < float("inf"):
            sync_set = workload.scaled(scale * sync_load_fraction)
            simulator = PDPRingSimulator(
                pdp.ring,
                pdp.frame,
                sync_set,
                PDPSimConfig(
                    variant=PDPVariant.MODIFIED,
                    async_saturating=True,
                    token_walk=TokenWalkModel.AVERAGE,
                ),
            )
            report = simulator.run(duration_s)
            points.append(
                ThroughputPoint(
                    protocol="modified-802.5",
                    bandwidth_mbps=bandwidth,
                    sync_utilization=report.sync_utilization,
                    async_utilization=report.async_utilization,
                    overhead_fraction=max(
                        0.0,
                        1.0 - report.sync_utilization - report.async_utilization,
                    ),
                    deadline_misses=report.total_missed,
                )
            )

        # --- timed token protocol ------------------------------------------
        ttp = parameters.ttp_analysis(bandwidth)
        ttp_scale = ttp.saturation_scale(workload)
        if 0.0 < ttp_scale < float("inf"):
            sync_set = workload.scaled(ttp_scale * sync_load_fraction)
            allocation = ttp.allocate(sync_set)
            simulator = TTPRingSimulator(
                ttp.ring,
                ttp.frame,
                sync_set,
                allocation,
                TTPSimConfig(async_saturating=True, track_rotations=False),
            )
            report = simulator.run(duration_s)
            points.append(
                ThroughputPoint(
                    protocol="fddi",
                    bandwidth_mbps=bandwidth,
                    sync_utilization=report.sync_utilization,
                    async_utilization=report.async_utilization,
                    overhead_fraction=max(
                        0.0,
                        1.0 - report.sync_utilization - report.async_utilization,
                    ),
                    deadline_misses=report.total_missed,
                )
            )

    return ThroughputResult(points=tuple(points))
