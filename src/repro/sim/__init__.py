"""Discrete-event simulation of both token ring protocols.

The simulators exist to *validate* the schedulability analyses: a message
set that Theorem 4.1 / 5.1 declares schedulable must never miss a deadline
in simulation, under critical-instant phasings and saturating asynchronous
background traffic.  They also expose protocol-level quantities the
analyses only bound — actual token rotation times, per-message response
times, medium utilization — for the examples and ablation studies.

* :mod:`~repro.sim.engine` — a from-scratch event-queue kernel (the
  environment has no simpy; see DESIGN.md §5).
* :mod:`~repro.sim.token_ring` — shared ring plumbing: station geometry,
  token walk segments, message/transmission records.
* :mod:`~repro.sim.traffic` — periodic synchronous sources and saturating
  asynchronous background sources.
* :mod:`~repro.sim.pdp_sim` — the priority driven protocol (standard and
  modified IEEE 802.5) at frame-arbitration granularity.
* :mod:`~repro.sim.ieee8025` — the protocol-faithful 802.5 variant with
  real token priority/reservation fields, priority stacking, and the
  8-level service-priority quantization.
* :mod:`~repro.sim.ttp_sim` — the timed token protocol with the FDDI
  timer rules (TRT, THT, late count) and synchronous bandwidths.
* :mod:`~repro.sim.trace` — deadline accounting and rotation statistics.
* :mod:`~repro.sim.fastpath` / :mod:`~repro.sim.fastpath_ttp` — the
  event-compressing fast paths, bit identical to the scalar oracles on
  every supported configuration (USAGE.md §13).
* :mod:`~repro.sim.dispatch` — engine selection (``scalar``/``fast``/
  ``auto``) and the content-addressed result cache wrappers.
* :mod:`~repro.sim.validate` — analysis-versus-simulation cross checks.
"""

from repro.sim.engine import Simulator
from repro.sim.ieee8025 import IEEE8025Config, IEEE8025Simulator
from repro.sim.pdp_sim import PDPRingSimulator, PDPSimConfig
from repro.sim.trace import DeadlineStats, SimulationReport
from repro.sim.traffic import ArrivalPhasing, SynchronousTraffic
from repro.sim.ttp_sim import TTPRingSimulator, TTPSimConfig
from repro.sim.fastpath import run_pdp_fast
from repro.sim.fastpath_ttp import run_ttp_fast
from repro.sim.dispatch import (
    SimEngine,
    cached_run_pdp,
    cached_run_ttp,
    resolve_engine,
    run_pdp,
    run_ttp,
    set_default_engine,
)
from repro.sim.validate import cross_validate_pdp, cross_validate_ttp

__all__ = [
    "Simulator",
    "IEEE8025Simulator",
    "IEEE8025Config",
    "PDPRingSimulator",
    "PDPSimConfig",
    "TTPRingSimulator",
    "TTPSimConfig",
    "SynchronousTraffic",
    "ArrivalPhasing",
    "DeadlineStats",
    "SimulationReport",
    "SimEngine",
    "run_pdp_fast",
    "run_ttp_fast",
    "run_pdp",
    "run_ttp",
    "cached_run_pdp",
    "cached_run_ttp",
    "resolve_engine",
    "set_default_engine",
    "cross_validate_pdp",
    "cross_validate_ttp",
]
