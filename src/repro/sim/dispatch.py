"""Engine selection and cached execution for the ring simulators.

Three engines (USAGE.md §13):

* ``scalar`` — the discrete-event oracles
  (:class:`~repro.sim.pdp_sim.PDPRingSimulator`,
  :class:`~repro.sim.ttp_sim.TTPRingSimulator`).
* ``fast`` — the event-compressing fast paths
  (:mod:`repro.sim.fastpath`, :mod:`repro.sim.fastpath_ttp`), bit
  identical to the oracles on every supported configuration; forcing
  ``fast`` on an unsupported configuration raises
  :class:`~repro.errors.ConfigurationError`.
* ``auto`` (default) — ``fast`` where supported, ``scalar`` otherwise
  (fallbacks are counted in ``sim.fastpath.fallbacks`` and logged).

The default engine resolves, in order: explicit ``engine=`` argument,
:func:`set_default_engine` (the runner's ``--sim-engine``), the
``REPRO_SIM_ENGINE`` environment variable, then ``auto``.

:func:`cached_run_pdp` / :func:`cached_run_ttp` wrap the dispatch with
the content-addressed result cache (:mod:`repro.cache`): the key hashes
the full simulation input — ring, frame format, streams, configuration,
allocation, horizon, the *effective* engine, and the code-version salt —
and a hit replays the stored :class:`~repro.sim.trace.SimulationReport`
bit for bit.  Cache hits do **not** re-publish ``sim.*`` run metrics
(metrics never feed results; ``cache.sim.*`` counters record the hit).
"""

from __future__ import annotations

import enum
import os
from dataclasses import asdict

from repro import cache as _cache
from repro.analysis.ttp import TTPAllocation
from repro.errors import ConfigurationError
from repro.messages.message_set import MessageSet
from repro.network.frames import FrameFormat
from repro.network.ring import RingNetwork
from repro.obs import logging as obslog
from repro.obs import metrics as _metrics
from repro.sim import fastpath, fastpath_ttp
from repro.sim.pdp_sim import PDPRingSimulator, PDPSimConfig
from repro.sim.trace import (
    DeadlineStats,
    FaultStats,
    RotationStats,
    SimulationReport,
)
from repro.sim.ttp_sim import TTPRingSimulator, TTPSimConfig

__all__ = [
    "SimEngine",
    "set_default_engine",
    "resolve_engine",
    "pdp_fastpath_unsupported",
    "ttp_fastpath_unsupported",
    "run_pdp",
    "run_ttp",
    "cached_run_pdp",
    "cached_run_ttp",
    "report_to_payload",
    "report_from_payload",
]

_LOG = obslog.get_logger("sim.dispatch")


class SimEngine(enum.Enum):
    """Which simulator implementation executes a run."""

    SCALAR = "scalar"
    FAST = "fast"
    AUTO = "auto"


_DEFAULT_ENGINE: SimEngine | None = None


def _coerce(engine: "SimEngine | str") -> SimEngine:
    if isinstance(engine, SimEngine):
        return engine
    try:
        return SimEngine(str(engine).lower())
    except ValueError:
        raise ConfigurationError(
            f"unknown sim engine {engine!r}; "
            f"expected one of {[e.value for e in SimEngine]}"
        ) from None


def set_default_engine(engine: "SimEngine | str | None") -> None:
    """Set the process default (the runner's ``--sim-engine``)."""
    global _DEFAULT_ENGINE
    _DEFAULT_ENGINE = None if engine is None else _coerce(engine)


def resolve_engine(engine: "SimEngine | str | None" = None) -> SimEngine:
    """Explicit argument > process default > ``REPRO_SIM_ENGINE`` > auto."""
    if engine is not None:
        return _coerce(engine)
    if _DEFAULT_ENGINE is not None:
        return _DEFAULT_ENGINE
    env = os.environ.get("REPRO_SIM_ENGINE")
    if env:
        return _coerce(env)
    return SimEngine.AUTO


def pdp_fastpath_unsupported(
    message_set: MessageSet, config: PDPSimConfig
) -> str | None:
    """Why the PDP fast path cannot run this configuration (None = it can)."""
    if config.faults is not None:
        # The event-compressing sweeps have no notion of mid-run recovery
        # stalls; silently ignoring a fault plan would be unsound, so the
        # fast path refuses and AUTO falls back to the scalar oracle.
        return "fault injection"
    if config.async_poisson is not None:
        return "Poisson asynchronous traffic"
    stations = [stream.station for stream in message_set]
    if len(set(stations)) != len(stations):
        return "multiple streams per station"
    return None


def ttp_fastpath_unsupported(config: TTPSimConfig) -> str | None:
    """Why the TTP fast path cannot run this configuration (None = it can)."""
    if config.faults is not None:
        return "fault injection"
    if config.async_poisson is not None:
        return "Poisson asynchronous traffic"
    return None


def _fallback(protocol: str, reason: str) -> None:
    _metrics.counter("sim.fastpath.fallbacks").inc()
    _LOG.debug(
        "%s fast path unsupported (%s); falling back to the scalar engine",
        protocol, reason,
        extra={"protocol": protocol, "reason": reason},
    )


def run_pdp(
    ring: RingNetwork,
    frame: FrameFormat,
    message_set: MessageSet,
    config: PDPSimConfig,
    duration_s: float,
    *,
    engine: "SimEngine | str | None" = None,
    max_events: int = 50_000_000,
) -> SimulationReport:
    """One PDP run through the engine dispatch (uncached)."""
    choice = resolve_engine(engine)
    if choice is not SimEngine.SCALAR:
        reason = pdp_fastpath_unsupported(message_set, config)
        if reason is None:
            return fastpath.run_pdp_fast(
                ring, frame, message_set, config, duration_s, max_events
            )
        if choice is SimEngine.FAST:
            raise ConfigurationError(
                f"sim engine 'fast' cannot run this configuration: {reason}"
            )
        _fallback("pdp", reason)
    return PDPRingSimulator(ring, frame, message_set, config).run(
        duration_s, max_events
    )


def run_ttp(
    ring: RingNetwork,
    frame: FrameFormat,
    message_set: MessageSet,
    allocation: TTPAllocation,
    config: TTPSimConfig,
    duration_s: float,
    *,
    engine: "SimEngine | str | None" = None,
    max_events: int = 50_000_000,
) -> SimulationReport:
    """One TTP run through the engine dispatch (uncached)."""
    choice = resolve_engine(engine)
    if choice is not SimEngine.SCALAR:
        reason = ttp_fastpath_unsupported(config)
        if reason is None:
            return fastpath_ttp.run_ttp_fast(
                ring, frame, message_set, allocation, config, duration_s,
                max_events,
            )
        if choice is SimEngine.FAST:
            raise ConfigurationError(
                f"sim engine 'fast' cannot run this configuration: {reason}"
            )
        _fallback("ttp", reason)
    return TTPRingSimulator(ring, frame, message_set, allocation, config).run(
        duration_s, max_events
    )


# -- report serialisation (cache payloads) ----------------------------------


def report_to_payload(report: SimulationReport) -> dict:
    """A JSON-safe dump that :func:`report_from_payload` inverts exactly."""
    return {
        "duration": report.duration,
        "sync_busy_time": report.sync_busy_time,
        "async_busy_time": report.async_busy_time,
        "token_time": report.token_time,
        "streams": [
            {
                "stream_index": s.stream_index,
                "completed": s.completed,
                "missed": s.missed,
                "max_response": s.max_response,
                "total_response": s.total_response,
                "responses": list(s.responses),
                "sample_limit": s.sample_limit,
            }
            for s in report.streams
        ],
        "rotations": [
            {
                "station": r.station,
                "count": r.count,
                "total": r.total,
                "maximum": r.maximum,
                "minimum": r.minimum,
            }
            for r in report.rotations
        ],
        "faults": (
            None
            if report.faults is None
            else {
                "token_losses": report.faults.token_losses,
                "membership_events": report.faults.membership_events,
                "corrupted_frames": report.faults.corrupted_frames,
                "recovery_time_s": report.faults.recovery_time_s,
                "corrupted_time_s": report.faults.corrupted_time_s,
            }
        ),
    }


def report_from_payload(payload: dict) -> SimulationReport:
    """Rebuild a report from :func:`report_to_payload` output.

    Tolerates payloads written before the ``faults`` field existed (the
    code-version cache salt makes those unreachable in practice, but a
    missing key must degrade to "no faults", never crash).
    """
    faults_payload = payload.get("faults")
    faults = (
        None
        if faults_payload is None
        else FaultStats(
            token_losses=int(faults_payload["token_losses"]),
            membership_events=int(faults_payload["membership_events"]),
            corrupted_frames=int(faults_payload["corrupted_frames"]),
            recovery_time_s=float(faults_payload["recovery_time_s"]),
            corrupted_time_s=float(faults_payload["corrupted_time_s"]),
        )
    )
    return SimulationReport(
        duration=float(payload["duration"]),
        streams=[
            DeadlineStats(
                stream_index=int(s["stream_index"]),
                completed=int(s["completed"]),
                missed=int(s["missed"]),
                max_response=float(s["max_response"]),
                total_response=float(s["total_response"]),
                responses=[float(r) for r in s["responses"]],
                sample_limit=(
                    None if s["sample_limit"] is None else int(s["sample_limit"])
                ),
            )
            for s in payload["streams"]
        ],
        rotations=[
            RotationStats(
                station=int(r["station"]),
                count=int(r["count"]),
                total=float(r["total"]),
                maximum=float(r["maximum"]),
                minimum=float(r["minimum"]),
            )
            for r in payload["rotations"]
        ],
        sync_busy_time=float(payload["sync_busy_time"]),
        async_busy_time=float(payload["async_busy_time"]),
        token_time=float(payload["token_time"]),
        faults=faults,
    )


# -- cached execution --------------------------------------------------------


def _streams_key(message_set: MessageSet) -> list:
    return [
        [stream.period_s, stream.payload_bits, stream.station]
        for stream in message_set
    ]


def _pdp_key(
    ring: RingNetwork,
    frame: FrameFormat,
    message_set: MessageSet,
    config: PDPSimConfig,
    duration_s: float,
    effective_engine: str,
    max_events: int,
) -> str:
    return _cache.content_key(
        {
            "kind": "sim.pdp",
            "engine": effective_engine,
            "ring": asdict(ring),
            "frame": asdict(frame),
            "streams": _streams_key(message_set),
            "config": {
                "variant": config.variant.value,
                "phasing": config.phasing.value,
                "phasing_seed": config.phasing_seed,
                "async_saturating": config.async_saturating,
                "token_walk": config.token_walk.value,
                "collect_responses": config.collect_responses,
                "response_sample_limit": config.response_sample_limit,
            },
            "duration_s": duration_s,
            "max_events": max_events,
        }
    )


def _ttp_key(
    ring: RingNetwork,
    frame: FrameFormat,
    message_set: MessageSet,
    allocation: TTPAllocation,
    config: TTPSimConfig,
    duration_s: float,
    effective_engine: str,
    max_events: int,
) -> str:
    return _cache.content_key(
        {
            "kind": "sim.ttp",
            "engine": effective_engine,
            "ring": asdict(ring),
            "frame": asdict(frame),
            "streams": _streams_key(message_set),
            "allocation": {
                "ttrt_s": allocation.ttrt_s,
                "token_visits": list(allocation.token_visits),
                "bandwidths_s": list(allocation.bandwidths_s),
                "augmented_lengths_s": list(allocation.augmented_lengths_s),
                "delta_s": allocation.delta_s,
            },
            "config": {
                "phasing": config.phasing.value,
                "phasing_seed": config.phasing_seed,
                "async_saturating": config.async_saturating,
                "async_frame_bits": config.async_frame_bits,
                "track_rotations": config.track_rotations,
                "collect_responses": config.collect_responses,
                "response_sample_limit": config.response_sample_limit,
            },
            "duration_s": duration_s,
            "max_events": max_events,
        }
    )


def _effective_engine(choice: SimEngine, unsupported: str | None) -> str:
    if choice is SimEngine.SCALAR or (
        choice is SimEngine.AUTO and unsupported is not None
    ):
        return SimEngine.SCALAR.value
    return SimEngine.FAST.value


def cached_run_pdp(
    ring: RingNetwork,
    frame: FrameFormat,
    message_set: MessageSet,
    config: PDPSimConfig,
    duration_s: float,
    *,
    engine: "SimEngine | str | None" = None,
    max_events: int = 50_000_000,
    use_cache: bool = True,
) -> SimulationReport:
    """:func:`run_pdp` with content-addressed memoisation.

    Fault-injected runs bypass the cache entirely (like Poisson runs):
    the cache key does not hash the fault plan, and lossy-run results
    are study artifacts, not reusable oracles.
    """
    if not use_cache or config.async_poisson is not None or config.faults is not None:
        return run_pdp(
            ring, frame, message_set, config, duration_s,
            engine=engine, max_events=max_events,
        )
    choice = resolve_engine(engine)
    key = _pdp_key(
        ring, frame, message_set, config, duration_s,
        _effective_engine(choice, pdp_fastpath_unsupported(message_set, config)),
        max_events,
    )
    store = _cache.result_cache()
    hit = store.get(key, namespace="sim")
    if hit is not None:
        return report_from_payload(hit)
    report = run_pdp(
        ring, frame, message_set, config, duration_s,
        engine=choice, max_events=max_events,
    )
    store.put(key, report_to_payload(report), namespace="sim")
    return report


def cached_run_ttp(
    ring: RingNetwork,
    frame: FrameFormat,
    message_set: MessageSet,
    allocation: TTPAllocation,
    config: TTPSimConfig,
    duration_s: float,
    *,
    engine: "SimEngine | str | None" = None,
    max_events: int = 50_000_000,
    use_cache: bool = True,
) -> SimulationReport:
    """:func:`run_ttp` with content-addressed memoisation.

    Fault-injected runs bypass the cache entirely (see
    :func:`cached_run_pdp`).
    """
    if not use_cache or config.async_poisson is not None or config.faults is not None:
        return run_ttp(
            ring, frame, message_set, allocation, config, duration_s,
            engine=engine, max_events=max_events,
        )
    choice = resolve_engine(engine)
    key = _ttp_key(
        ring, frame, message_set, allocation, config, duration_s,
        _effective_engine(choice, ttp_fastpath_unsupported(config)),
        max_events,
    )
    store = _cache.result_cache()
    hit = store.get(key, namespace="sim")
    if hit is not None:
        return report_from_payload(hit)
    report = run_ttp(
        ring, frame, message_set, allocation, config, duration_s,
        engine=choice, max_events=max_events,
    )
    store.put(key, report_to_payload(report), namespace="sim")
    return report
