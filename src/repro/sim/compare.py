"""Fidelity comparison: abstract arbitration versus the faithful protocol.

The analysis-granularity PDP simulator (:mod:`repro.sim.pdp_sim`) and the
protocol-faithful 802.5 simulator (:mod:`repro.sim.ieee8025`) model the
same network at two levels of abstraction.  Running both on identical
workloads quantifies the *fidelity gap* — how much behaviour the paper's
analysis abstraction hides:

* deadline verdicts should agree wherever the analysis has margin;
* the faithful simulator pays real token walks (up to a full lap per
  frame for a station transmitting back-to-back under the standard
  variant) where the abstract one charges the analysis' ``Θ/2`` average,
  so its response times are generally *larger*;
* service-level quantization only exists in the faithful model.

Used by the fidelity benchmark and available as a library utility for
anyone extending either simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.pdp import PDPVariant
from repro.messages.message_set import MessageSet
from repro.network.frames import FrameFormat
from repro.network.ring import RingNetwork
from repro.sim import dispatch
from repro.sim.ieee8025 import IEEE8025Config, IEEE8025Simulator
from repro.sim.pdp_sim import PDPSimConfig, TokenWalkModel
from repro.sim.trace import SimulationReport
from repro.sim.traffic import ArrivalPhasing

__all__ = ["FidelityComparison", "compare_pdp_fidelity"]


@dataclass(frozen=True)
class FidelityComparison:
    """Paired results of the two PDP models on one workload.

    Attributes:
        abstract: report from the arbitration-oracle simulator.
        faithful: report from the protocol-faithful 802.5 simulator.
    """

    abstract: SimulationReport
    faithful: SimulationReport

    @property
    def verdicts_agree(self) -> bool:
        """Both models agree on whether any deadline was missed."""
        return self.abstract.deadline_safe == self.faithful.deadline_safe

    @property
    def miss_gap(self) -> int:
        """faithful misses - abstract misses (>= 0 in the typical case)."""
        return self.faithful.total_missed - self.abstract.total_missed

    def worst_response_ratio(self) -> float:
        """Max over streams of faithful/abstract worst response times.

        Streams the abstract model never completed are skipped; returns
        1.0 when nothing is comparable.
        """
        worst = 1.0
        for a, f in zip(self.abstract.streams, self.faithful.streams):
            if a.max_response > 0 and f.max_response > 0:
                worst = max(worst, f.max_response / a.max_response)
        return worst


def compare_pdp_fidelity(
    ring: RingNetwork,
    frame: FrameFormat,
    message_set: MessageSet,
    variant: PDPVariant = PDPVariant.STANDARD,
    duration_s: float = 1.0,
    n_priority_levels: int = 8,
    phasing: ArrivalPhasing = ArrivalPhasing.SIMULTANEOUS,
) -> FidelityComparison:
    """Run both PDP models on the same workload and pair the reports."""
    abstract = dispatch.run_pdp(
        ring,
        frame,
        message_set,
        PDPSimConfig(
            variant=variant,
            phasing=phasing,
            async_saturating=True,
            token_walk=TokenWalkModel.ACTUAL,
        ),
        duration_s,
    )
    faithful = IEEE8025Simulator(
        ring,
        frame,
        message_set,
        IEEE8025Config(
            variant=variant,
            n_priority_levels=n_priority_levels,
            phasing=phasing,
            async_saturating=True,
        ),
    ).run(duration_s)
    return FidelityComparison(abstract=abstract, faithful=faithful)
