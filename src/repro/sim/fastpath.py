"""Fast-path PDP simulator: busy-chain event compression.

Token-ring schedules are piecewise regular: once a synchronous message
wins arbitration it transmits back-to-back frames with a constant token
cost and constant full-frame occupancy until it completes, a
higher-priority release preempts it, or the horizon ends; saturating
asynchronous filler between synchronous busy periods is a constant
``token_cost + occupancy`` pulse train; and a non-saturating ring simply
idles until the next release.  This module advances each such regular
stretch in one step — as a numpy cumulative-sum sweep for long
stretches, as a tight scalar loop for short ones — instead of paying one
heap event per frame like :class:`~repro.sim.pdp_sim.PDPRingSimulator`.

**Bit-identity contract** (enforced by ``repro.verify``'s
``pdp_fastpath_equiv`` property and pinned by a mutation-smoke mutant):
the report is equal to the scalar oracle's *bit for bit* — every
response time, busy total, and verdict.  ``np.cumsum`` is a strictly
sequential accumulation, so it reproduces the exact IEEE-754 chain of
the scalar simulator's repeated ``t += step``; every comparison below is
evaluated with the same additions as the scalar code (never
algebraically rearranged), and consume/occupancy arithmetic follows
:meth:`~repro.sim.pdp_sim.PDPRingSimulator._transmit_sync` operation by
operation.

Unsupported configurations (Poisson asynchronous traffic, several
streams on one station — the scalar queue's head-of-line blocking across
streams has no per-stream closed form) raise
:class:`~repro.errors.ConfigurationError`; the dispatcher falls back to
the scalar engine for them under ``auto``.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.pdp import PDPVariant
from repro.errors import ConfigurationError, SimulationError
from repro.messages.message_set import MessageSet
from repro.network.frames import FrameFormat
from repro.network.ring import RingNetwork
from repro.obs import metrics as _metrics
from repro.sim.pdp_sim import PDPSimConfig, TokenWalkModel
from repro.sim.token_ring import RingGeometry
from repro.sim.trace import DeadlineStats, SimulationReport
from repro.sim.traffic import SynchronousTraffic

__all__ = ["run_pdp_fast"]

#: Below this many estimated frames a plain-Python loop beats building
#: numpy arrays; both produce identical floats, so the threshold is pure
#: tuning.
_VECTOR_THRESHOLD = 24


def _short_frame_occupancy(
    chunk_bits: float, overhead_bits: float, bandwidth_bps: float, theta: float
) -> float:
    """Medium occupancy of a non-full frame (Section 4.3 case analysis).

    Module-level on purpose: the mutation smoke hot-patches this seam to
    prove the fast-vs-scalar equivalence property is non-vacuous.
    """
    return max((chunk_bits + overhead_bits) / bandwidth_bps, theta)


def run_pdp_fast(
    ring: RingNetwork,
    frame: FrameFormat,
    message_set: MessageSet,
    config: PDPSimConfig = PDPSimConfig(),
    duration_s: float = 0.0,
    max_events: int = 50_000_000,
) -> SimulationReport:
    """Simulate like :meth:`PDPRingSimulator.run`, bit for bit, faster."""
    if len(message_set) == 0:
        raise ConfigurationError("cannot simulate an empty message set")
    stations = [stream.station for stream in message_set]
    for station in stations:
        if station >= ring.n_stations:
            raise ConfigurationError(
                f"stream at station {station!r} does not fit a "
                f"{ring.n_stations!r}-station ring"
            )
    if config.async_poisson is not None:
        raise ConfigurationError(
            "the fast path does not model Poisson asynchronous traffic; "
            "use the scalar engine"
        )
    if len(set(stations)) != len(stations):
        raise ConfigurationError(
            "the fast path requires one stream per station (the scalar "
            "queue's cross-stream FIFO blocking has no closed form)"
        )
    if duration_s <= 0:
        raise ConfigurationError(f"duration must be positive, got {duration_s!r}")

    n = ring.n_stations
    theta = ring.theta
    bandwidth = ring.bandwidth_bps
    info = frame.info_bits
    overhead = frame.overhead_bits
    full_edge = info - 1e-9
    occ_full = max(frame.frame_time(bandwidth), theta)
    geometry = RingGeometry(ring)
    average_walk = config.token_walk is TokenWalkModel.AVERAGE
    modified = config.variant is PDPVariant.MODIFIED
    half_theta = theta / 2.0
    saturating = config.async_saturating

    # Token cost of back-to-back frames of one segment (holder == station)
    # and of one saturating filler hop ((holder + 1) % n claims the token).
    if modified:
        repeat_tc = 0.0
    elif average_walk:
        repeat_tc = half_theta
    else:
        repeat_tc = theta
    if average_walk:
        filler_tc = half_theta
    elif n == 1:
        filler_tc = theta
    else:
        filler_tc = geometry.token_walk_time(0, 1)

    traffic = SynchronousTraffic(
        message_set, config.phasing, config.phasing_seed
    )
    n_streams = len(message_set)
    per_stream: list[list] = [[] for _ in range(n_streams)]
    for message in traffic.arrivals_until(duration_s):
        per_stream[message.stream_index].append(message)
    head = [0] * n_streams
    counts = [len(messages) for messages in per_stream]
    priorities = traffic.priorities()

    sample_limit = (
        config.response_sample_limit if config.collect_responses else None
    )
    stats = [
        DeadlineStats(stream_index=i, sample_limit=sample_limit)
        for i in range(n_streams)
    ]

    holder = 0
    now = 0.0
    sync_busy = 0.0
    async_busy = 0.0
    token_busy = 0.0
    events = 0  # logical frame/idle events the scalar engine would process
    compressed_steps = 0  # segments, filler bursts, and idle jumps taken

    while True:
        if events > max_events:
            raise SimulationError(
                f"simulation exceeded {max_events} events; "
                "runaway schedule or horizon too long"
            )

        # -- arbitration: highest-priority pending head ---------------------
        pick = -1
        pick_priority = 0
        for i in range(n_streams):
            h = head[i]
            if h >= counts[i]:
                continue
            if per_stream[i][h].arrival_time > now + 1e-15:
                continue
            p = priorities[i]
            if pick < 0 or p < pick_priority:
                pick = i
                pick_priority = p

        if pick >= 0:
            # -- synchronous busy segment ---------------------------------
            compressed_steps += 1
            message = per_stream[pick][head[pick]]
            station = message.station
            if modified and station == holder:
                tc1 = 0.0
            elif average_walk:
                tc1 = half_theta
            elif station == holder:
                tc1 = theta
            else:
                tc1 = geometry.token_walk_time(holder, station)
            # Earliest arrival among strictly higher-priority heads; none
            # is eligible now (else it would have won), and no head moves
            # while this stream transmits, so it is constant segment-wide.
            hp_next = None
            for i in range(n_streams):
                if priorities[i] >= pick_priority:
                    continue
                h = head[i]
                if h < counts[i]:
                    t = per_stream[i][h].arrival_time
                    if hp_next is None or t < hp_next:
                        hp_next = t

            r = message.remaining_bits
            stop_t = duration_s if hp_next is None else min(duration_s, hp_next)
            step = repeat_tc + occ_full
            rough_frames = min(r / info, (stop_t - now) / step) if step > 0 else r / info
            holder = station

            if rough_frames < _VECTOR_THRESHOLD:
                # Scalar micro-segment: same ops as _transmit_sync, no
                # event heap, no per-frame attribute chasing.
                t = now
                tc = tc1
                executed = 0
                completed = False
                while True:
                    chunk = r if r < info else info
                    if chunk >= full_edge:
                        occ = occ_full
                    else:
                        occ = _short_frame_occupancy(
                            chunk, overhead, bandwidth, theta
                        )
                    sync_busy += occ
                    token_busy += tc
                    nr = r - chunk
                    if nr < 0.0:
                        nr = 0.0
                    t = (t + tc) + occ
                    executed += 1
                    if nr <= 1e-9:
                        message.remaining_bits = nr
                        message.completion_time = t
                        stats[pick].record_completion(
                            message.arrival_time, message.deadline, t
                        )
                        head[pick] += 1
                        completed = True
                        break
                    r = nr
                    if t > duration_s:
                        break
                    if hp_next is not None and hp_next <= t + 1e-15:
                        break
                    tc = repeat_tc
                if not completed:
                    message.remaining_bits = r
                now = t
                events += executed
            else:
                # Vectorised segment: remaining-bits chain, then the
                # token/occupancy boundary chain, then a stop scan.
                upper = int(r / info) + 3
                chain = np.empty(upper)
                chain[0] = r
                chain[1:] = -info
                remaining = np.cumsum(chain)
                done = (remaining <= info) | ((remaining - info) <= 1e-9)
                hits = np.flatnonzero(done)
                while hits.size == 0:  # pragma: no cover - margin is ample
                    tail = np.empty(upper)
                    tail[0] = remaining[-1]
                    tail[1:] = -info
                    remaining = np.concatenate(
                        [remaining, np.cumsum(tail)[1:]]
                    )
                    done = (remaining <= info) | ((remaining - info) <= 1e-9)
                    hits = np.flatnonzero(done)
                k0 = int(hits[0])
                m = k0 + 1  # frames to completion

                build = min(m, max(int((stop_t - now) / step) + 3, 1))
                while True:
                    width = 2 * build + 1
                    steps = np.empty(width)
                    steps[0] = now
                    steps[1] = tc1
                    steps[2::2] = occ_full
                    steps[3::2] = repeat_tc
                    if build == m:
                        rk = float(remaining[k0])
                        chunk_last = rk if rk < info else info
                        if not (chunk_last >= full_edge):
                            steps[2 * m] = _short_frame_occupancy(
                                chunk_last, overhead, bandwidth, theta
                            )
                    boundaries = np.cumsum(steps)
                    checks = boundaries[2 : 2 * build : 2]  # b_1..b_{build-1}
                    bad = checks > duration_s
                    if hp_next is not None:
                        bad |= hp_next <= checks + 1e-15
                    stop = np.flatnonzero(bad)
                    if stop.size:
                        executed = 1 + int(stop[0])
                        break
                    if build == m:
                        executed = m
                        break
                    build = min(m, build * 2)

                acc = np.empty(executed + 1)
                acc[0] = sync_busy
                acc[1:] = steps[2 : 2 * executed + 1 : 2]
                sync_busy = float(np.cumsum(acc)[-1])
                acc[0] = token_busy
                acc[1:] = steps[1 : 2 * executed : 2]
                token_busy = float(np.cumsum(acc)[-1])
                events += executed

                if executed == m:
                    rk = float(remaining[k0])
                    chunk = rk if rk < info else info
                    nr = rk - chunk
                    if nr < 0.0:
                        nr = 0.0
                    finish = float(boundaries[2 * m])
                    message.remaining_bits = nr
                    message.completion_time = finish
                    stats[pick].record_completion(
                        message.arrival_time, message.deadline, finish
                    )
                    head[pick] += 1
                    now = finish
                else:
                    message.remaining_bits = float(remaining[executed])
                    now = float(boundaries[2 * executed])

            if now > duration_s:
                break
            continue

        # -- no synchronous message pending ---------------------------------
        t_next = None
        for i in range(n_streams):
            h = head[i]
            if h < counts[i]:
                t = per_stream[i][h].arrival_time
                if t_next is None or t < t_next:
                    t_next = t

        if not saturating:
            # Idle ring: jump straight to the next release.
            if t_next is None or not (t_next < duration_s):
                break
            compressed_steps += 1
            events += 1
            now = t_next
            continue

        # -- saturating asynchronous filler burst ---------------------------
        compressed_steps += 1
        stop_t = duration_s if t_next is None else min(duration_s, t_next)
        pulse = filler_tc + occ_full
        rough = (stop_t - now) / pulse

        if rough < _VECTOR_THRESHOLD:
            t = now
            sent = 0
            while True:
                async_busy += occ_full
                token_busy += filler_tc
                t = (t + filler_tc) + occ_full
                sent += 1
                if t > duration_s:
                    break
                if t_next is not None and t_next <= t + 1e-15:
                    break
        else:
            build = max(int(rough) + 3, 1)
            while True:
                width = 2 * build + 1
                steps = np.empty(width)
                steps[0] = now
                steps[1::2] = filler_tc
                steps[2::2] = occ_full
                boundaries = np.cumsum(steps)
                checks = boundaries[2:: 2]  # b_1..b_build
                bad = checks > duration_s
                if t_next is not None:
                    bad |= t_next <= checks + 1e-15
                stop = np.flatnonzero(bad)
                if stop.size:
                    sent = 1 + int(stop[0])
                    break
                build *= 2
            acc = np.empty(sent + 1)
            acc[0] = async_busy
            acc[1:] = occ_full
            async_busy = float(np.cumsum(acc)[-1])
            acc[0] = token_busy
            acc[1:] = filler_tc
            token_busy = float(np.cumsum(acc)[-1])
            t = float(boundaries[2 * sent])

        holder = (holder + sent) % n
        events += sent
        now = t
        if now > duration_s:
            break

    # -- tail accounting: every pending release with an in-run deadline ----
    for i in range(n_streams):
        for message in per_stream[i][head[i]:]:
            if message.deadline <= duration_s and message.remaining_bits > 1e-9:
                stats[i].record_unfinished()

    report = SimulationReport(
        duration=duration_s,
        streams=stats,
        sync_busy_time=sync_busy,
        async_busy_time=async_busy,
        token_time=token_busy,
    )
    _metrics.counter("sim.fastpath.pdp.runs").inc()
    _metrics.counter("sim.fastpath.pdp.events").inc(events)
    _metrics.counter("sim.fastpath.pdp.steps").inc(compressed_steps)
    report.publish_metrics("sim.pdp")
    return report
