"""Traffic generation for the ring simulators.

Synchronous traffic is strictly periodic (Section 3.2): stream ``S_i``
releases a message of ``C_i^b`` payload bits every ``P_i`` seconds with the
period end as its deadline.  The *phasing* — when the first message of each
stream arrives — is the adversarial knob: simultaneous release at t=0 is
the critical instant the analyses assume, and random phasings exercise the
average case.

Asynchronous traffic is modelled as *saturating*: every station always has
an asynchronous frame ready.  This is the worst case for synchronous
deadlines (maximal blocking / token lateness) and matches the worst-case
assumptions in both theorems.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.messages.message_set import MessageSet
from repro.sim.token_ring import PendingMessage

__all__ = ["ArrivalPhasing", "SynchronousTraffic", "PoissonAsyncTraffic"]


@dataclass(frozen=True)
class PoissonAsyncTraffic:
    """Poisson asynchronous frame arrivals, uniformly spread over stations.

    An alternative to the saturating worst case: frames arrive as a
    Poisson process whose rate is chosen so the *offered* asynchronous
    load (frame time x rate) equals ``offered_load`` of the link.

    Attributes:
        offered_load: fraction of link capacity offered as async traffic.
        frame_bits: on-wire size of each asynchronous frame.
        seed: RNG seed; arrivals are deterministic per seed.
    """

    offered_load: float
    frame_bits: float
    seed: int = 0

    def __post_init__(self) -> None:
        if self.offered_load < 0:
            raise ConfigurationError(
                f"offered load must be non-negative, got {self.offered_load!r}"
            )
        if self.frame_bits <= 0:
            raise ConfigurationError(
                f"async frame size must be positive, got {self.frame_bits!r}"
            )

    def arrivals_until(
        self, end_time: float, n_stations: int, bandwidth_bps: float
    ) -> list[tuple[float, int]]:
        """``(arrival_time, station)`` pairs in ``[0, end_time)``, sorted."""
        if end_time < 0:
            raise ConfigurationError(
                f"end time must be non-negative, got {end_time!r}"
            )
        if n_stations < 1:
            raise ConfigurationError(
                f"need at least one station, got {n_stations!r}"
            )
        if self.offered_load == 0 or end_time == 0:
            return []
        frame_time = self.frame_bits / bandwidth_bps
        rate = self.offered_load / frame_time  # frames per second
        rng = np.random.default_rng(self.seed)
        # Expected count + 6 sigma headroom, then trim: avoids a Python
        # loop over exponentials.
        expected = rate * end_time
        draw = int(expected + 6.0 * np.sqrt(expected) + 16)
        gaps = rng.exponential(1.0 / rate, size=draw)
        times = np.cumsum(gaps)
        while times.size and times[-1] < end_time:
            more = rng.exponential(1.0 / rate, size=draw)
            times = np.concatenate([times, times[-1] + np.cumsum(more)])
        times = times[times < end_time]
        stations = rng.integers(0, n_stations, size=times.size)
        return [(float(t), int(s)) for t, s in zip(times, stations)]


class ArrivalPhasing(enum.Enum):
    """How first arrivals of the streams are offset."""

    #: All streams release at t=0 — the critical instant.
    SIMULTANEOUS = "simultaneous"
    #: Stream ``i`` releases first at ``i * P_i / n`` — a gentle stagger.
    STAGGERED = "staggered"
    #: Each stream's first release is uniform in ``[0, P_i)``.
    RANDOM = "random"


@dataclass(frozen=True)
class SynchronousTraffic:
    """Arrival generator for one message set.

    Args:
        message_set: the workload; stream priorities are assigned by RM
            order (shortest period = priority 0).
        phasing: first-arrival policy.
        seed: RNG seed for random phasing (ignored otherwise).
    """

    message_set: MessageSet
    phasing: ArrivalPhasing = ArrivalPhasing.SIMULTANEOUS
    seed: int = 0

    def offsets(self) -> list[float]:
        """First-arrival offset per stream (message-set order)."""
        n = len(self.message_set)
        if self.phasing is ArrivalPhasing.SIMULTANEOUS:
            return [0.0] * n
        if self.phasing is ArrivalPhasing.STAGGERED:
            return [
                (i / n) * stream.period_s
                for i, stream in enumerate(self.message_set)
            ]
        if self.phasing is ArrivalPhasing.RANDOM:
            rng = np.random.default_rng(self.seed)
            return [
                float(rng.uniform(0.0, stream.period_s))
                for stream in self.message_set
            ]
        raise ConfigurationError(f"unknown phasing: {self.phasing!r}")  # pragma: no cover

    def priorities(self) -> list[int]:
        """RM priority per stream in message-set order (0 = highest)."""
        order = sorted(
            range(len(self.message_set)),
            key=lambda i: (
                self.message_set[i].period_s,
                self.message_set[i].payload_bits,
                self.message_set[i].station,
            ),
        )
        priorities = [0] * len(self.message_set)
        for priority, stream_index in enumerate(order):
            priorities[stream_index] = priority
        return priorities

    def arrivals_until(self, end_time: float) -> list[PendingMessage]:
        """All message releases in ``[0, end_time)``, sorted by time.

        Messages with zero payload are still released (they complete
        instantly once scheduled) so stream accounting stays uniform.
        """
        if end_time < 0:
            raise ConfigurationError(f"end time must be non-negative, got {end_time!r}")
        offsets = self.offsets()
        priorities = self.priorities()
        releases: list[PendingMessage] = []
        for index, stream in enumerate(self.message_set):
            t = offsets[index]
            while t < end_time:
                releases.append(
                    PendingMessage(
                        stream_index=index,
                        station=stream.station,
                        arrival_time=t,
                        deadline=t + stream.period_s,
                        payload_bits=stream.payload_bits,
                        remaining_bits=stream.payload_bits,
                        priority=priorities[index],
                    )
                )
                t += stream.period_s
        releases.sort(key=lambda m: (m.arrival_time, m.stream_index))
        return releases
