"""Protocol-faithful IEEE 802.5 simulator: priority and reservation fields.

The main PDP simulator (:mod:`repro.sim.pdp_sim`) works at the paper's
analysis granularity — a global arbitration oracle picks the
highest-priority pending frame each round.  This module simulates the
*mechanism* that approximates that oracle in the real protocol:

* a free token hops station to station carrying a **priority field**
  ``P`` and a **reservation field** ``R``;
* every station the token (or a data frame header) passes stamps ``R``
  with the service level of its most urgent pending frame;
* a station may capture a free token only when it holds a frame with
  level ``>= P``;
* after one frame (the token holding timer of Section 4.2) the station
  releases a new token; if ``R > P`` it raises the token's priority to
  ``R`` and becomes a **stacking station**, remembering ``(Sr=P, Sx=R)``;
* a stacking station that later sees a free token at priority ``Sx``
  lowers it to ``max(R, Sr)``, re-stacking when ``R > Sr`` — the 802.5
  priority-unwind protocol;
* the **modified variant** of the paper lets the transmitting station
  send another frame instead of releasing the token while its own next
  frame's level is at least the observed reservation.

Fidelity notes:

* **Priority quantization.**  Real 802.5 tokens carry a 3-bit priority:
  eight service levels.  Rate-monotonic assignment over ``n > 8`` streams
  must therefore quantize priorities — a degradation the paper's analysis
  idealizes away.  ``n_priority_levels`` exposes this (default 8; pass a
  large value for the idealized distinct-priority setting), and the
  quantization ablation benchmark measures its cost.
* Reservations are stamped *per hop* for the free token, and sampled over
  all stations at frame-release time (the data frame circulates the full
  ring, so every station has seen its header by then).
* When the ring is completely idle (no pending frames anywhere and
  asynchronous traffic disabled) the token is parked until the next
  synchronous arrival instead of simulating empty laps; this changes
  nothing observable except event count.

Asynchronous background traffic transmits at the lowest service level and
is saturating when enabled, matching the worst-case assumptions of the
analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.pdp import PDPVariant
from repro.errors import ConfigurationError, SimulationError
from repro.messages.message_set import MessageSet
from repro.network.frames import FrameFormat
from repro.network.ring import RingNetwork
from repro.sim.engine import Simulator
from repro.sim.token_ring import StationQueue
from repro.sim.trace import DeadlineStats, SimulationReport
from repro.sim.traffic import ArrivalPhasing, SynchronousTraffic

__all__ = ["IEEE8025Config", "IEEE8025Simulator", "assign_service_levels"]

#: Service level used by asynchronous traffic (lowest).
ASYNC_LEVEL = 0


def assign_service_levels(
    message_set: MessageSet, n_priority_levels: int
) -> list[int]:
    """Map RM priorities onto 802.5 service levels (higher = more urgent).

    Streams are ranked rate-monotonically and spread over levels
    ``1 .. n_priority_levels - 1`` (level 0 is reserved for asynchronous
    traffic).  With fewer levels than streams, adjacent RM ranks share a
    level — the quantization real 802.5 imposes.

    Returns one level per stream, in message-set order.
    """
    if n_priority_levels < 2:
        raise ConfigurationError(
            f"need at least two service levels (one above async), "
            f"got {n_priority_levels!r}"
        )
    n = len(message_set)
    if n == 0:
        return []
    order = sorted(
        range(n),
        key=lambda i: (
            message_set[i].period_s,
            message_set[i].payload_bits,
            message_set[i].station,
        ),
    )
    sync_levels = n_priority_levels - 1
    levels = [0] * n
    for rank, stream_index in enumerate(order):
        # rank 0 = most urgent -> highest level; with enough levels the
        # ranks map one-to-one top-down, otherwise adjacent ranks share.
        bucket = min(rank * sync_levels // max(n, sync_levels), sync_levels - 1)
        levels[stream_index] = n_priority_levels - 1 - bucket
    return levels


@dataclass(frozen=True)
class IEEE8025Config:
    """Configuration of one faithful-802.5 run.

    Attributes:
        variant: standard (token released after every frame) or modified
            (back-to-back frames while still the most urgent).
        n_priority_levels: token priority alphabet size (8 in the
            standard; larger values emulate ideal distinct priorities).
        phasing: first-arrival phasing of the synchronous streams.
        phasing_seed: RNG seed for random phasing.
        async_saturating: every station always has a level-0 frame ready.
    """

    variant: PDPVariant = PDPVariant.STANDARD
    n_priority_levels: int = 8
    phasing: ArrivalPhasing = ArrivalPhasing.SIMULTANEOUS
    phasing_seed: int = 0
    async_saturating: bool = True


@dataclass
class _TokenState:
    """The circulating token (or the implicit token during a frame)."""

    position: int = 0
    priority: int = 0
    reservation: int = 0
    #: per-station stacks of (Sr, Sx) pairs.
    stacks: list[list[tuple[int, int]]] = field(default_factory=list)


class IEEE8025Simulator:
    """Event-driven simulation of the 802.5 token-priority mechanism."""

    def __init__(
        self,
        ring: RingNetwork,
        frame: FrameFormat,
        message_set: MessageSet,
        config: IEEE8025Config = IEEE8025Config(),
    ):
        if len(message_set) == 0:
            raise ConfigurationError("cannot simulate an empty message set")
        for stream in message_set:
            if stream.station >= ring.n_stations:
                raise ConfigurationError(
                    f"stream at station {stream.station!r} does not fit a "
                    f"{ring.n_stations!r}-station ring"
                )
        self._ring = ring
        self._frame = frame
        self._message_set = message_set
        self._config = config
        self._levels = assign_service_levels(
            message_set, config.n_priority_levels
        )
        self._hop_time = ring.theta / ring.n_stations

    # -- helpers ------------------------------------------------------------------

    def _station_top_level(
        self, queues: list[StationQueue], station: int, now: float
    ) -> int | None:
        """Service level of the station's most urgent pending frame."""
        head = queues[station].head()
        if head is not None and head.arrival_time <= now + 1e-15:
            return head.priority  # priority field reused to store the level
        if self._config.async_saturating:
            return ASYNC_LEVEL
        return None

    def _max_pending_level(
        self, queues: list[StationQueue], now: float, excluding: int | None = None
    ) -> int:
        """Highest pending level on the ring (reservation sampling)."""
        best = -1
        for station in range(self._ring.n_stations):
            if station == excluding:
                continue
            level = self._station_top_level(queues, station, now)
            if level is not None:
                best = max(best, level)
        return best

    def _effective_frame_time(self, chunk_bits: float, is_full: bool) -> float:
        theta = self._ring.theta
        if is_full:
            return max(self._frame.frame_time(self._ring.bandwidth_bps), theta)
        wire = self._ring.transmission_time(chunk_bits + self._frame.overhead_bits)
        return max(wire, theta)

    # -- main loop ---------------------------------------------------------------

    def run(self, duration_s: float, max_events: int = 50_000_000) -> SimulationReport:
        """Simulate ``duration_s`` seconds of ring time."""
        if duration_s <= 0:
            raise ConfigurationError(f"duration must be positive, got {duration_s!r}")

        n = self._ring.n_stations
        traffic = SynchronousTraffic(
            self._message_set, self._config.phasing, self._config.phasing_seed
        )
        arrivals = traffic.arrivals_until(duration_s)
        # Re-stamp message priorities with 802.5 service levels: higher
        # number = more urgent (the opposite of the RM-index convention
        # used by PendingMessage.priority in the abstract simulator).
        for message in arrivals:
            message.priority = self._levels[message.stream_index]
        arrival_cursor = 0

        queues = [StationQueue(station=i) for i in range(n)]
        stats = [DeadlineStats(stream_index=i) for i in range(len(self._message_set))]
        token = _TokenState(position=0, stacks=[[] for _ in range(n)])
        busy = {"sync": 0.0, "async": 0.0, "token": 0.0}
        sim = Simulator()

        def ingest(now: float) -> None:
            nonlocal arrival_cursor
            while (
                arrival_cursor < len(arrivals)
                and arrivals[arrival_cursor].arrival_time <= now + 1e-15
            ):
                message = arrivals[arrival_cursor]
                queues[message.station].push(message)
                arrival_cursor += 1

        def next_arrival() -> float | None:
            if arrival_cursor < len(arrivals):
                return arrivals[arrival_cursor].arrival_time
            return None

        def token_at(simulator: Simulator) -> None:
            """The free token arrives at ``token.position``."""
            now = simulator.now
            ingest(now)
            station = token.position

            # 1. Stamp the reservation field.
            level_here = self._station_top_level(queues, station, now)
            if level_here is not None:
                token.reservation = max(token.reservation, level_here)

            # 2. Priority unwind by a stacking station.
            stack = token.stacks[station]
            if stack and stack[-1][1] == token.priority:
                s_r, __ = stack.pop()
                if token.reservation > s_r:
                    stack.append((s_r, token.reservation))
                    token.priority = token.reservation
                else:
                    token.priority = s_r
                token.reservation = 0

            # 3. Capture decision.
            capture_level = self._station_top_level(queues, station, now)
            if capture_level is not None and capture_level >= token.priority:
                transmit(simulator, station)
                return

            # 4. Forward the token (park it when the ring is idle).
            if self._max_pending_level(queues, now) < 0:
                upcoming = next_arrival()
                if upcoming is None or upcoming >= duration_s:
                    return  # nothing will ever arrive; end quietly
                simulator.schedule(upcoming, token_at)
                return
            token.position = (station + 1) % n
            busy["token"] += self._hop_time
            simulator.schedule_after(self._hop_time, token_at)

        def transmit(simulator: Simulator, station: int) -> None:
            """Send one frame from ``station``; then release or continue."""
            now = simulator.now
            head = queues[station].head()
            is_sync = head is not None and head.arrival_time <= now + 1e-15

            if is_sync:
                info_bits = self._frame.info_bits
                chunk = min(head.remaining_bits, info_bits)
                is_full = chunk >= info_bits - 1e-9
                occupancy = self._effective_frame_time(chunk, is_full)
                head.consume(chunk)
                busy["sync"] += occupancy
            else:
                occupancy = self._effective_frame_time(self._frame.info_bits, True)
                busy["async"] += occupancy

            finish = now + occupancy

            def release(simulator: Simulator) -> None:
                release_now = simulator.now
                ingest(release_now)

                if is_sync and head.complete and head.completion_time is None:
                    head.completion_time = release_now
                    stats[head.stream_index].record_completion(
                        head.arrival_time, head.deadline, release_now
                    )
                    popped = queues[station].pop_complete()
                    if popped is not head:
                        raise SimulationError(
                            "queue head mismatch on completion; protocol bug"
                        )

                # The frame circulated the whole ring: reservation now
                # reflects every station's most urgent pending frame —
                # including the transmitter's own remaining frames, which
                # it reserves for in the header it strips.
                ring_wide = self._max_pending_level(queues, release_now)
                token.reservation = max(token.reservation, ring_wide, 0)

                # Modified variant: keep the medium while still on top.
                if self._config.variant is PDPVariant.MODIFIED:
                    own = self._station_top_level(queues, station, release_now)
                    if own is not None and own >= token.reservation and (
                        own >= token.priority
                    ):
                        token.reservation = 0
                        transmit(simulator, station)
                        return

                # Standard release: raise priority if reserved above P.
                if token.reservation > token.priority:
                    stack = token.stacks[station]
                    stack.append((token.priority, token.reservation))
                    if len(stack) >= self._config.n_priority_levels:
                        # Each stacked pair strictly raises the priority, so
                        # depth can never reach the alphabet size.
                        raise SimulationError(
                            "priority stack overflow: protocol invariant "
                            f"violated at station {station}"
                        )
                    token.priority = token.reservation
                # The new token starts life carrying the releasing
                # station's own standing request (it sets the reservation
                # field directly); without this a downstream stacking
                # station could unwind the priority before the rightful
                # claimant's request is re-stamped, bypassing it.
                own_next = self._station_top_level(queues, station, release_now)
                token.reservation = own_next if own_next is not None else 0
                token.position = (station + 1) % n
                busy["token"] += self._hop_time
                simulator.schedule_after(self._hop_time, token_at)

            simulator.schedule(finish, release)

        sim.schedule(0.0, token_at)
        sim.run_until(duration_s, max_events=max_events)

        for queue in queues:
            for message in queue.messages:
                if message.deadline <= duration_s and not message.complete:
                    stats[message.stream_index].record_unfinished()

        return SimulationReport(
            duration=duration_s,
            streams=stats,
            sync_busy_time=busy["sync"],
            async_busy_time=busy["async"],
            token_time=busy["token"],
        )
