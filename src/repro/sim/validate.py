"""Cross-validation between the analyses and the simulators.

The schedulability criteria are *sufficient*: a set they accept must never
miss a deadline, under any phasing and any asynchronous interference.  The
functions here run the matching simulator under adversarial conditions
(critical-instant phasing, saturating asynchronous traffic) and check that
direction.  The converse direction (sets the analysis rejects *may* still
survive a particular simulation) is reported but never asserted — the
tests are not necessary conditions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.pdp import PDPAnalysis
from repro.analysis.ttp import TTPAnalysis
from repro.messages.message_set import MessageSet
from repro.sim.pdp_sim import PDPRingSimulator, PDPSimConfig, TokenWalkModel
from repro.sim.trace import SimulationReport
from repro.sim.traffic import ArrivalPhasing
from repro.sim.ttp_sim import TTPRingSimulator, TTPSimConfig

__all__ = ["CrossValidation", "cross_validate_pdp", "cross_validate_ttp"]


@dataclass(frozen=True)
class CrossValidation:
    """Outcome of one analysis-versus-simulation comparison.

    Attributes:
        analysis_schedulable: the theorem's verdict.
        report: the simulation run's statistics.
        consistent: False only in the genuine failure mode — the analysis
            accepted the set but the simulator missed a deadline.
    """

    analysis_schedulable: bool
    report: SimulationReport

    @property
    def consistent(self) -> bool:
        """True unless an analysis-accepted set missed a deadline in sim."""
        return not (self.analysis_schedulable and not self.report.deadline_safe)


def _default_duration(message_set: MessageSet, periods: float) -> float:
    """A run long enough to exercise every stream several times."""
    return periods * message_set.max_period


def cross_validate_pdp(
    analysis: PDPAnalysis,
    message_set: MessageSet,
    duration_periods: float = 4.0,
    phasing: ArrivalPhasing = ArrivalPhasing.SIMULTANEOUS,
) -> CrossValidation:
    """Check Theorem 4.1 against the PDP simulator.

    The simulator is configured with the ``AVERAGE`` token-walk model —
    the ``Θ/2`` expected token cost the theorem itself assumes — plus
    saturating asynchronous traffic and (by default) critical-instant
    phasing.
    """
    schedulable = analysis.is_schedulable(message_set)
    simulator = PDPRingSimulator(
        analysis.ring,
        analysis.frame,
        message_set,
        PDPSimConfig(
            variant=analysis.variant,
            phasing=phasing,
            async_saturating=True,
            token_walk=TokenWalkModel.AVERAGE,
        ),
    )
    report = simulator.run(_default_duration(message_set, duration_periods))
    return CrossValidation(analysis_schedulable=schedulable, report=report)


def cross_validate_ttp(
    analysis: TTPAnalysis,
    message_set: MessageSet,
    duration_periods: float = 4.0,
    phasing: ArrivalPhasing = ArrivalPhasing.SIMULTANEOUS,
) -> CrossValidation:
    """Check Theorem 5.1 against the TTP simulator.

    Runs the simulator with the exact allocation the analysis certified
    (when one exists) under saturating asynchronous traffic.  An
    unallocatable set (``q_i < 2``) is reported as analysis-unschedulable
    with a zero-length report, since there is no allocation to simulate.
    """
    result = analysis.analyze(message_set)
    if result.allocation is None:
        return CrossValidation(
            analysis_schedulable=result.schedulable,
            report=SimulationReport(duration=0.0),
        )
    simulator = TTPRingSimulator(
        analysis.ring,
        analysis.frame,
        message_set,
        result.allocation,
        TTPSimConfig(phasing=phasing, async_saturating=True),
    )
    report = simulator.run(_default_duration(message_set, duration_periods))
    return CrossValidation(analysis_schedulable=result.schedulable, report=report)
