"""Cross-validation between the analyses and the simulators.

The schedulability criteria are *sufficient*: a set they accept must never
miss a deadline, under any phasing and any asynchronous interference.  The
functions here run the matching simulator under adversarial conditions
(critical-instant phasing, saturating asynchronous traffic) and check that
direction.  The converse direction (sets the analysis rejects *may* still
survive a particular simulation) is reported but never asserted — the
tests are not necessary conditions.

Horizon selection
-----------------
A fixed ``4 × P_max`` run can end before a long-period stream's later
invocations are exercised — under offset phasing the interesting
beat patterns between periods only repeat at the **hyperperiod**
(the LCM of the periods).  :func:`default_validation_horizon` therefore
extends the requested minimum to a whole number of hyperperiods (plus one
``P_max`` of margin so the final invocations' deadlines fall inside the
run) whenever the hyperperiod is rationally representable and the result
stays under the documented cap of :data:`HORIZON_CAP_PERIODS` ×
``P_max``; randomly drawn float periods have astronomically large
hyperperiods, and those runs simply use the requested minimum.

Coverage accounting
-------------------
Every cross-validation additionally *asserts* that the simulator
accounted at least the expected number of invocations per stream — the
number of releases whose deadlines fall inside the run.  A shortfall
means the simulator dropped messages (a harness bug, not a protocol
result) and raises :class:`~repro.errors.SimulationError` rather than
reporting a vacuous "no misses".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Sequence

from repro.analysis.pdp import PDPAnalysis
from repro.analysis.ttp import TTPAnalysis
from repro.errors import SimulationError
from repro.messages.message_set import MessageSet
from repro.obs import logging as obslog
from repro.sim import dispatch
from repro.sim.pdp_sim import PDPSimConfig, TokenWalkModel
from repro.sim.trace import SimulationReport
from repro.sim.traffic import ArrivalPhasing, SynchronousTraffic
from repro.sim.ttp_sim import TTPSimConfig

__all__ = [
    "HORIZON_CAP_PERIODS",
    "CrossValidation",
    "default_validation_horizon",
    "expected_invocations",
    "cross_validate_pdp",
    "cross_validate_ttp",
]

#: Hard cap on the validation horizon, in units of ``P_max``.  Keeps the
#: hyperperiod extension from turning a spot check into an unbounded run
#: (e.g. periods 97 ms and 101 ms → hyperperiod 9.797 s ≈ 97 P_max).
HORIZON_CAP_PERIODS = 64.0


#: Memo for :func:`_rational_hyperperiod` — the LCM reduction walks every
#: period through ``Fraction.limit_denominator`` and ``math.lcm``, which is
#: pure arithmetic on the period tuple, yet every cross-validation call used
#: to recompute it from scratch (hundreds of times per fuzz round on the
#: same message sets).  Bounded so pathological callers cannot grow it
#: without limit; eviction is insertion-ordered, which is LRU-enough here.
_HYPERPERIOD_MEMO: dict[tuple, float | None] = {}
_HYPERPERIOD_MEMO_LIMIT = 4096

_LOG = obslog.get_logger("sim.validate")

#: Period tuples whose capped horizon has already been warned about, so a
#: fuzz round re-validating the same pathological set does not spam the log.
_CAP_WARNED: set[tuple] = set()


def _rational_hyperperiod(
    periods: Sequence[float], max_denominator: int = 1_000_000
) -> float | None:
    """The LCM of the periods as exact rationals, or None.

    Returns None when some period is not (near-)exactly a small rational
    — the usual case for randomly drawn floats — or when the LCM blows
    up beyond any useful horizon.  Memoised on the *distinct* period
    values: the LCM is invariant under duplicates and order, and large
    tables draw from a small period catalogue, so deduplicating first
    turns an ``O(n)`` Fraction walk (the quadratic tail of validating a
    10^5-stream table, via the per-stream limit_denominator cost) into an
    ``O(m)`` one with ``m`` distinct periods.
    """
    distinct = tuple(sorted(set(float(p) for p in periods)))
    memo_key = (distinct, max_denominator)
    try:
        return _HYPERPERIOD_MEMO[memo_key]
    except KeyError:
        pass
    result = _rational_hyperperiod_uncached(distinct, max_denominator)
    if len(_HYPERPERIOD_MEMO) >= _HYPERPERIOD_MEMO_LIMIT:
        _HYPERPERIOD_MEMO.pop(next(iter(_HYPERPERIOD_MEMO)))
    _HYPERPERIOD_MEMO[memo_key] = result
    return result


def _rational_hyperperiod_uncached(
    periods: Sequence[float], max_denominator: int = 1_000_000
) -> float | None:
    fractions: list[Fraction] = []
    for period in periods:
        approx = Fraction(period).limit_denominator(max_denominator)
        if approx <= 0 or abs(float(approx) - period) > 1e-12 * period:
            return None
        fractions.append(approx)
    denominator = math.lcm(*(f.denominator for f in fractions))
    if denominator > 10**15:
        # Near-co-prime denominators: the common-denominator rewrite below
        # would manipulate astronomically large integers for a hyperperiod
        # that cannot be simulated anyway.  Treat as irrational.
        return None
    numerator = 1
    # Keep the overflow guard in exact integer arithmetic: with float
    # multiplication (`denominator * 1e9`) a big-int denominator overflows
    # the float range and the comparison itself raised OverflowError for
    # pathological co-prime period sets.
    limit = denominator * 10**9
    for f in fractions:
        numerator = math.lcm(numerator, f.numerator * (denominator // f.denominator))
        if numerator > limit:  # hopelessly long; treat as irrational
            return None
    return numerator / denominator


def default_validation_horizon(
    message_set: MessageSet, min_periods: float = 4.0
) -> float:
    """A run length that exercises every stream's later invocations.

    At least ``min_periods × P_max``; extended to a whole number of
    hyperperiods plus one ``P_max`` of deadline margin when the
    hyperperiod is representable, capped at
    ``HORIZON_CAP_PERIODS × P_max`` (documented above).
    """
    p_max = message_set.max_period
    base = min_periods * p_max
    cap = HORIZON_CAP_PERIODS * p_max
    hyper = _rational_hyperperiod(message_set.periods)
    if hyper is not None and hyper <= cap:
        cycles = max(1, math.ceil(base / hyper))
        return min(cycles * hyper + p_max, cap)
    if hyper is not None:
        # Near-co-prime periods: covering one hyperperiod would dwarf any
        # practical run, so the horizon is capped — loudly, once per period
        # tuple, because a capped run no longer covers every beat pattern.
        key = tuple(message_set.periods)
        if key not in _CAP_WARNED:
            if len(_CAP_WARNED) >= _HYPERPERIOD_MEMO_LIMIT:
                _CAP_WARNED.clear()
            _CAP_WARNED.add(key)
            _LOG.warning(
                "hyperperiod %.6g s exceeds the validation horizon cap "
                "%.6g s (%g periods); capping the run instead of simulating "
                "the full hyperperiod",
                hyper, cap, HORIZON_CAP_PERIODS,
                extra={"hyperperiod_s": hyper, "cap_s": cap},
            )
    return min(base, cap)


def _default_duration(message_set: MessageSet, periods: float) -> float:
    """Backwards-compatible alias used by the cross-validators."""
    return default_validation_horizon(message_set, periods)


def expected_invocations(
    message_set: MessageSet,
    duration_s: float,
    phasing: ArrivalPhasing = ArrivalPhasing.SIMULTANEOUS,
    phasing_seed: int = 0,
) -> tuple[int, ...]:
    """Releases per stream whose deadlines fall inside ``duration_s``.

    Replays the exact float accumulation of
    :meth:`repro.sim.traffic.SynchronousTraffic.arrivals_until` so the
    counts match the simulator's release schedule bit for bit.
    """
    traffic = SynchronousTraffic(message_set, phasing, phasing_seed)
    offsets = traffic.offsets()
    counts: list[int] = []
    for offset, stream in zip(offsets, message_set):
        t, count = offset, 0
        while t < duration_s:
            if t + stream.period_s <= duration_s:
                count += 1
            t += stream.period_s
        counts.append(count)
    return tuple(counts)


def _assert_coverage(
    report: SimulationReport, expected: tuple[int, ...]
) -> None:
    """Every in-horizon invocation must have been accounted by the sim."""
    for stats, want in zip(report.streams, expected):
        accounted = stats.completed + stats.missed
        if accounted < want:
            raise SimulationError(
                f"stream {stats.stream_index} accounted only {accounted} "
                f"invocations of the {want} whose deadlines fall inside "
                f"the {report.duration!r}s run; the simulator dropped "
                "messages"
            )


@dataclass(frozen=True)
class CrossValidation:
    """Outcome of one analysis-versus-simulation comparison.

    Attributes:
        analysis_schedulable: the theorem's verdict.
        report: the simulation run's statistics.
        expected_invocations: per-stream release counts whose deadlines
            fall inside the run (empty when nothing was simulated); the
            simulator is asserted to have accounted at least this many.
        consistent: False only in the genuine failure mode — the analysis
            accepted the set but the simulator missed a deadline.
    """

    analysis_schedulable: bool
    report: SimulationReport
    expected_invocations: tuple[int, ...] = field(default=())

    @property
    def consistent(self) -> bool:
        """True unless an analysis-accepted set missed a deadline in sim."""
        return not (self.analysis_schedulable and not self.report.deadline_safe)


def cross_validate_pdp(
    analysis: PDPAnalysis,
    message_set: MessageSet,
    duration_periods: float = 4.0,
    phasing: ArrivalPhasing = ArrivalPhasing.SIMULTANEOUS,
    *,
    engine: "dispatch.SimEngine | str | None" = None,
    use_cache: bool = True,
) -> CrossValidation:
    """Check Theorem 4.1 against the PDP simulator.

    The simulator is configured with the ``AVERAGE`` token-walk model —
    the ``Θ/2`` expected token cost the theorem itself assumes — plus
    saturating asynchronous traffic and (by default) critical-instant
    phasing.  ``duration_periods`` is the *minimum* horizon in units of
    ``P_max``; see :func:`default_validation_horizon`.  ``engine`` and
    ``use_cache`` route through :mod:`repro.sim.dispatch` (USAGE.md §13).
    """
    schedulable = analysis.is_schedulable(message_set)
    config = PDPSimConfig(
        variant=analysis.variant,
        phasing=phasing,
        async_saturating=True,
        token_walk=TokenWalkModel.AVERAGE,
    )
    duration = default_validation_horizon(message_set, duration_periods)
    report = dispatch.cached_run_pdp(
        analysis.ring,
        analysis.frame,
        message_set,
        config,
        duration,
        engine=engine,
        use_cache=use_cache,
    )
    expected = expected_invocations(message_set, duration, phasing)
    _assert_coverage(report, expected)
    return CrossValidation(
        analysis_schedulable=schedulable,
        report=report,
        expected_invocations=expected,
    )


def cross_validate_ttp(
    analysis: TTPAnalysis,
    message_set: MessageSet,
    duration_periods: float = 4.0,
    phasing: ArrivalPhasing = ArrivalPhasing.SIMULTANEOUS,
    *,
    engine: "dispatch.SimEngine | str | None" = None,
    use_cache: bool = True,
) -> CrossValidation:
    """Check Theorem 5.1 against the TTP simulator.

    Runs the simulator with the exact allocation the analysis certified
    (when one exists) under saturating asynchronous traffic.  An
    unallocatable set (``q_i < 2``) is reported as analysis-unschedulable
    with a zero-length report, since there is no allocation to simulate.
    ``duration_periods`` is the *minimum* horizon in units of ``P_max``;
    see :func:`default_validation_horizon`.  ``engine`` and ``use_cache``
    route through :mod:`repro.sim.dispatch` (USAGE.md §13).
    """
    result = analysis.analyze(message_set)
    if result.allocation is None:
        return CrossValidation(
            analysis_schedulable=result.schedulable,
            report=SimulationReport(duration=0.0),
        )
    config = TTPSimConfig(phasing=phasing, async_saturating=True)
    duration = default_validation_horizon(message_set, duration_periods)
    report = dispatch.cached_run_ttp(
        analysis.ring,
        analysis.frame,
        message_set,
        result.allocation,
        config,
        duration,
        engine=engine,
        use_cache=use_cache,
    )
    expected = expected_invocations(message_set, duration, phasing)
    _assert_coverage(report, expected)
    return CrossValidation(
        analysis_schedulable=result.schedulable,
        report=report,
        expected_invocations=expected,
    )
