"""A minimal discrete-event simulation kernel.

The environment provides no simulation framework (no simpy), so this module
implements the classic event-queue pattern from scratch:

* events are ``(time, sequence, action)`` triples kept in a binary heap;
* the sequence number makes the ordering *total* and FIFO for simultaneous
  events, which keeps every run deterministic;
* actions are plain callables taking the simulator, so protocol logic reads
  as explicit state machines rather than framework magic.

The kernel deliberately has no notion of processes, channels, or
interrupts — the two ring protocols are token-passing state machines, and
callbacks model them directly.  Cancellation is supported through
:class:`EventHandle` (a lazy tombstone: cancelled events stay in the heap
and are skipped on pop, the standard heapq idiom).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from repro.errors import SimulationError
from repro.obs import metrics as _metrics

__all__ = ["Simulator", "EventHandle"]

#: Kernel accounting: events executed and runs completed.  Incremented
#: once per ``run``/``run_until`` call (with the batch count), never per
#: event, so instrumentation costs nothing on the event loop itself.
_EVENTS = _metrics.counter("sim.events_processed")
_RUNS = _metrics.counter("sim.runs")

#: The signature of a scheduled action.
Action = Callable[["Simulator"], None]


class EventHandle:
    """A scheduled event that can be cancelled before it fires."""

    __slots__ = ("time", "_action", "cancelled")

    def __init__(self, time: float, action: Action):
        self.time = time
        self._action = action
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        self.cancelled = True


class Simulator:
    """An event-queue discrete-event simulator.

    Typical protocol code::

        sim = Simulator()
        sim.schedule(0.0, lambda s: print("t=0"))
        sim.schedule_after(1.5, lambda s: print("t=1.5"))
        sim.run_until(10.0)
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, EventHandle]] = []
        self._sequence = itertools.count()
        self._events_processed = 0

    # -- clock -------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time, seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for instrumentation)."""
        return self._events_processed

    # -- scheduling --------------------------------------------------------------

    def schedule(self, time: float, action: Action) -> EventHandle:
        """Schedule ``action`` at absolute ``time`` (must not be in the past)."""
        if time < self._now - 1e-15:
            raise SimulationError(
                f"cannot schedule into the past: now={self._now!r}, event={time!r}"
            )
        handle = EventHandle(max(time, self._now), action)
        heapq.heappush(self._queue, (handle.time, next(self._sequence), handle))
        return handle

    def schedule_after(self, delay: float, action: Action) -> EventHandle:
        """Schedule ``action`` after a non-negative ``delay``."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay!r}")
        return self.schedule(self._now + delay, action)

    # -- execution --------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next pending event.  Returns False when none remain."""
        while self._queue:
            time, _, handle = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = time
            self._events_processed += 1
            handle._action(self)
            return True
        return False

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> None:
        """Run events with time <= ``end_time``; the clock ends at ``end_time``.

        ``max_events`` guards against runaway protocol loops (an event
        budget exhaustion raises :class:`SimulationError` rather than
        hanging the host).
        """
        if end_time < self._now:
            raise SimulationError(
                f"end time {end_time!r} is before current time {self._now!r}"
            )
        executed = 0
        while self._queue:
            time, _, handle = self._queue[0]
            if time > end_time:
                break
            heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = time
            self._events_processed += 1
            executed += 1
            handle._action(self)
            if max_events is not None and executed >= max_events:
                _EVENTS.inc(executed)
                raise SimulationError(
                    f"event budget of {max_events} exhausted at t={self._now!r}; "
                    "likely a scheduling loop in protocol logic"
                )
        self._now = end_time
        _EVENTS.inc(executed)
        _RUNS.inc()

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the queue is empty (bounded by ``max_events``)."""
        executed = 0
        try:
            while self.step():
                executed += 1
                if executed >= max_events:
                    raise SimulationError(
                        f"event budget of {max_events} exhausted at "
                        f"t={self._now!r}; likely a scheduling loop in "
                        "protocol logic"
                    )
        finally:
            _EVENTS.inc(executed)
            _RUNS.inc()

    # -- introspection ------------------------------------------------------------

    def pending_events(self) -> int:
        """Number of scheduled (non-cancelled) events still in the queue."""
        return sum(1 for _, _, h in self._queue if not h.cancelled)
