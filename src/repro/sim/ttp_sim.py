"""Simulation of the timed token protocol (FDDI, Section 5).

The simulator implements the FDDI capacity-allocation timer rules in
event-driven form:

* Every station keeps a token-rotation timer (TRT).  When the token
  arrives *early* (TRT below TTRT), the station banks the earliness as
  asynchronous credit (its token holding time, THT) and resets TRT; when
  the token is *late* (TRT expired since the last visit, Late_Ct > 0), the
  lateness is absorbed — no asynchronous credit — and TRT keeps running.
* On every visit the station may transmit synchronous traffic for up to
  its synchronous bandwidth ``h_i`` regardless of lateness.
* Asynchronous frames (saturating background, the worst case) are sent
  only against earliness credit; a frame that *starts* inside the credit
  is always finished — the **asynchronous overrun** of up to one frame
  time per visit that the ``δ = Θ + F`` overhead term accounts for.
* Token passing is charged ``Θ / n`` per hop so that one full rotation
  costs exactly the ``Θ`` of the analysis (DESIGN.md, substitution table).

Synchronous messages are transmitted one frame per token visit, each frame
carrying the frame overhead plus up to ``h_i - F_ovhd`` of payload — the
framing assumed by the paper's equation (7).

The allocation (``h_i`` values, TTRT) comes from
:class:`repro.analysis.ttp.TTPAllocation`, so a simulation run validates
precisely the configuration the analysis certified.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.ttp import TTPAllocation
from repro.errors import ConfigurationError, SimulationError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.messages.message_set import MessageSet
from repro.obs import metrics as _metrics
from repro.network.frames import FrameFormat
from repro.network.ring import RingNetwork
from repro.sim.engine import Simulator
from repro.sim.token_ring import StationQueue
from repro.sim.trace import DeadlineStats, RotationStats, SimulationReport
from repro.sim.traffic import (
    ArrivalPhasing,
    PoissonAsyncTraffic,
    SynchronousTraffic,
)

__all__ = ["TTPSimConfig", "TTPRingSimulator"]


@dataclass(frozen=True)
class TTPSimConfig:
    """Configuration of one TTP simulation run.

    Attributes:
        phasing: first-arrival phasing of the synchronous streams.
        phasing_seed: RNG seed for random phasing.
        async_saturating: when True every station always has asynchronous
            frames ready (maximal token lateness — the worst case).
        async_frame_bits: on-wire size of an asynchronous frame (payload +
            overhead); defaults to the synchronous frame format's total.
        track_rotations: record token rotation statistics per station.
        collect_responses: store individual response-time samples on the
            per-stream stats (bounded by ``response_sample_limit``).
        response_sample_limit: cap on stored samples per stream.
        async_poisson: Poisson asynchronous arrivals (queued per station,
            served against earliness credit) instead of the saturating
            model; only meaningful with ``async_saturating=False``.
        faults: seeded lossy-medium fault schedule (token loss, frame
            corruption, membership churn).  ``None`` simulates a perfect
            medium; a plan with all rates zero is behaviourally identical
            to ``None`` (bit-identical reports, pinned by the fuzzer).
    """

    phasing: ArrivalPhasing = ArrivalPhasing.SIMULTANEOUS
    phasing_seed: int = 0
    async_saturating: bool = True
    async_frame_bits: float | None = None
    track_rotations: bool = True
    collect_responses: bool = False
    response_sample_limit: int = 10_000
    async_poisson: PoissonAsyncTraffic | None = None
    faults: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.async_poisson is not None and self.async_saturating:
            raise ConfigurationError(
                "async_poisson requires async_saturating=False; the two "
                "asynchronous models are mutually exclusive"
            )


class TTPRingSimulator:
    """Discrete-event simulator of the timed token protocol.

    Usage::

        analysis = TTPAnalysis(ring, frame)
        allocation = analysis.allocate(message_set)
        sim = TTPRingSimulator(ring, frame, message_set, allocation)
        report = sim.run(duration_s=2.0)
        assert report.deadline_safe
        assert report.max_rotation <= 2 * allocation.ttrt_s + tolerance
    """

    def __init__(
        self,
        ring: RingNetwork,
        frame: FrameFormat,
        message_set: MessageSet,
        allocation: TTPAllocation,
        config: TTPSimConfig = TTPSimConfig(),
    ):
        if len(message_set) == 0:
            raise ConfigurationError("cannot simulate an empty message set")
        if len(allocation.bandwidths_s) != len(message_set):
            raise ConfigurationError(
                f"allocation covers {len(allocation.bandwidths_s)} streams "
                f"but the message set has {len(message_set)}"
            )
        self._ring = ring
        self._frame = frame
        self._message_set = message_set
        self._allocation = allocation
        self._config = config
        async_bits = (
            frame.total_bits
            if config.async_frame_bits is None
            else float(config.async_frame_bits)
        )
        self._async_frame_time = ring.transmission_time(async_bits)
        self._hop_cost = ring.theta / ring.n_stations

        # Map station -> (stream index, h_i); one stream per station.
        self._station_stream: dict[int, int] = {}
        for index, stream in enumerate(message_set):
            if stream.station >= ring.n_stations:
                raise ConfigurationError(
                    f"stream at station {stream.station!r} does not fit a "
                    f"{ring.n_stations!r}-station ring"
                )
            if stream.station in self._station_stream:
                raise ConfigurationError(
                    f"two streams mapped to station {stream.station!r}; the "
                    "TTP model has one synchronous stream per station"
                )
            self._station_stream[stream.station] = index

    # -- main loop ---------------------------------------------------------------

    def run(self, duration_s: float, max_events: int = 50_000_000) -> SimulationReport:
        """Simulate ``duration_s`` seconds of ring time."""
        if duration_s <= 0:
            raise ConfigurationError(f"duration must be positive, got {duration_s!r}")

        n = self._ring.n_stations
        ttrt = self._allocation.ttrt_s
        traffic = SynchronousTraffic(
            self._message_set, self._config.phasing, self._config.phasing_seed
        )
        arrivals = traffic.arrivals_until(duration_s)
        arrival_cursor = 0

        async_queues: list[list[float]] = [[] for _ in range(n)]
        async_cursor = 0
        async_arrivals: list[tuple[float, int]] = []
        if self._config.async_poisson is not None:
            async_arrivals = self._config.async_poisson.arrivals_until(
                duration_s, n, self._ring.bandwidth_bps
            )

        queues = [StationQueue(station=i) for i in range(n)]
        sample_limit = (
            self._config.response_sample_limit
            if self._config.collect_responses
            else None
        )
        stats = [
            DeadlineStats(stream_index=i, sample_limit=sample_limit)
            for i in range(len(self._message_set))
        ]
        rotations = (
            [RotationStats(station=i) for i in range(n)]
            if self._config.track_rotations
            else []
        )

        # FDDI timer state per station.  trt_start[i] is when station i's
        # TRT last restarted; last_visit[i] the previous token arrival.
        trt_start = [0.0] * n
        last_visit: list[float | None] = [None] * n
        busy = {"sync": 0.0, "async": 0.0, "token": 0.0, "visits": 0.0}
        sim = Simulator()
        injector = (
            FaultInjector(self._config.faults, duration_s)
            if self._config.faults is not None
            else None
        )

        def ingest_arrivals(now: float) -> None:
            nonlocal arrival_cursor, async_cursor
            while (
                arrival_cursor < len(arrivals)
                and arrivals[arrival_cursor].arrival_time <= now + 1e-15
            ):
                message = arrivals[arrival_cursor]
                queues[message.station].push(message)
                arrival_cursor += 1
            while (
                async_cursor < len(async_arrivals)
                and async_arrivals[async_cursor][0] <= now + 1e-15
            ):
                __, station = async_arrivals[async_cursor]
                async_queues[station].append(async_arrivals[async_cursor][0])
                async_cursor += 1

        def token_arrival(station: int):
            def handler(simulator: Simulator) -> None:
                now = simulator.now
                if injector is not None:
                    # Ring faults detected since the last visit stall the
                    # token for the claim/recovery process; the visit is
                    # retried at the same station afterwards.  TRTs keep
                    # running, so the stall shows up as token lateness.
                    stall = injector.ring_stall(now)
                    if stall > 0.0:
                        simulator.schedule(now + stall, token_arrival(station))
                        return
                busy["visits"] += 1
                ingest_arrivals(now)

                if self._config.track_rotations and last_visit[station] is not None:
                    rotations[station].record(now - last_visit[station])
                last_visit[station] = now

                # --- FDDI timer rules -------------------------------------
                elapsed = now - trt_start[station]
                if elapsed >= ttrt - 1e-15:
                    # TRT expired at least once since the last reset: the
                    # token is late.  Late_Ct clears, TRT keeps running from
                    # its most recent expiry, and no asynchronous credit is
                    # granted this visit.
                    expiries = int(elapsed // ttrt)
                    trt_start[station] += expiries * ttrt
                    async_credit = 0.0
                else:
                    async_credit = ttrt - elapsed
                    trt_start[station] = now

                # --- synchronous transmission ------------------------------
                sync_time = self._transmit_sync(
                    simulator, station, queues, stats, now, injector
                )
                busy["sync"] += sync_time

                # --- asynchronous transmission (with overrun) ----------------
                async_time = 0.0
                if self._config.async_saturating and self._async_frame_time > 0:
                    # Frames are sent while credit remains; the last one may
                    # start with a sliver of credit and overruns to complete
                    # (the asynchronous-overrun allowance).
                    if async_credit > 1e-15:
                        frames = math.ceil(
                            async_credit / self._async_frame_time - 1e-12
                        )
                        async_time = frames * self._async_frame_time
                elif self._config.async_poisson is not None:
                    poisson_frame_time = self._ring.transmission_time(
                        self._config.async_poisson.frame_bits
                    )
                    credit = async_credit
                    queue = async_queues[station]
                    while credit > 1e-15 and queue and queue[0] <= now + 1e-15:
                        queue.pop(0)
                        async_time += poisson_frame_time
                        credit -= poisson_frame_time
                busy["async"] += async_time

                # --- pass the token ------------------------------------------
                busy["token"] += self._hop_cost
                departure = now + sync_time + async_time + self._hop_cost
                next_station = (station + 1) % n
                if departure < duration_s:
                    simulator.schedule(departure, token_arrival(next_station))

            return handler

        sim.schedule(0.0, token_arrival(0))
        sim.run_until(duration_s, max_events=max_events)

        # The token chain may end before `duration_s` (the last departure
        # falls past the horizon); arrivals released after the final visit
        # were never ingested into the queues.  Drain them so the
        # unfinished-message accounting below sees every release whose
        # deadline falls inside the run.
        ingest_arrivals(duration_s)
        self._account_unfinished(queues, stats, duration_s)
        report = SimulationReport(
            duration=duration_s,
            streams=stats,
            rotations=rotations,
            sync_busy_time=busy["sync"],
            async_busy_time=busy["async"],
            token_time=busy["token"],
            faults=injector.stats if injector is not None else None,
        )
        _metrics.counter("sim.ttp.token_visits").inc(busy["visits"])
        report.publish_metrics("sim.ttp")
        return report

    # -- transmissions ---------------------------------------------------------------

    def _transmit_sync(
        self,
        simulator: Simulator,
        station: int,
        queues: list[StationQueue],
        stats: list[DeadlineStats],
        now: float,
        injector: FaultInjector | None = None,
    ) -> float:
        """Transmit synchronous frames within the station's ``h_i`` budget.

        One frame per message chunk; each frame pays the frame overhead.
        Returns the medium time consumed.
        """
        stream_index = self._station_stream.get(station)
        if stream_index is None:
            return 0.0
        budget = self._allocation.bandwidths_s[stream_index]
        overhead = self._frame.overhead_time(self._ring.bandwidth_bps)
        queue = queues[station]
        used = 0.0

        while budget - used > overhead + 1e-15:
            head = queue.head()
            if head is None or head.arrival_time > now + used + 1e-15:
                break
            payload_budget_bits = (budget - used - overhead) * self._ring.bandwidth_bps
            chunk = min(head.remaining_bits, payload_budget_bits)
            if chunk <= 0 and head.remaining_bits > 0:
                break
            if injector is not None and injector.corrupt_frame(now + used):
                # Corrupted frame: the budget pays for overhead + payload on
                # the wire but no payload is delivered; the loop retries the
                # same head with whatever budget remains this visit.
                waste = overhead + chunk / self._ring.bandwidth_bps
                injector.record_corrupted_time(waste)
                used += waste
                continue
            head.consume(chunk)
            used += overhead + chunk / self._ring.bandwidth_bps
            if head.complete:
                finish = now + used
                head.completion_time = finish
                stats[head.stream_index].record_completion(
                    head.arrival_time, head.deadline, finish
                )
                popped = queue.pop_complete()
                if popped is not head:
                    raise SimulationError(
                        "queue head mismatch on completion; scheduling bug"
                    )
            else:
                break  # budget exhausted mid-message
        return used

    def _account_unfinished(
        self,
        queues: list[StationQueue],
        stats: list[DeadlineStats],
        end_time: float,
    ) -> None:
        """Count still-pending messages whose deadlines already passed."""
        for queue in queues:
            for message in queue.messages:
                if message.deadline <= end_time and not message.complete:
                    stats[message.stream_index].record_unfinished()
