"""Shared plumbing for the two ring-protocol simulators.

Both simulators share: ring geometry (how long the token takes to travel
between stations), per-station queues of pending synchronous messages, and
transmission bookkeeping.  Nothing protocol-specific lives here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.messages.message_set import MessageSet
from repro.network.ring import RingNetwork

__all__ = ["RingGeometry", "PendingMessage", "StationQueue"]


@dataclass(frozen=True)
class RingGeometry:
    """Token travel times derived from a :class:`RingNetwork`.

    One full lap of the token costs exactly ``Θ`` (walk time plus the token
    transmission); a ``k``-hop journey costs ``k`` ring-fraction shares of
    the walk time plus one token transmission (the token is emitted once
    and then repeated bit-by-bit by intermediate stations).
    """

    ring: RingNetwork

    @property
    def n_stations(self) -> int:
        """Stations on the ring."""
        return self.ring.n_stations

    def hops(self, src: int, dst: int) -> int:
        """Hops travelling downstream from ``src`` to ``dst`` (0 for same)."""
        n = self.ring.n_stations
        if not (0 <= src < n and 0 <= dst < n):
            raise SimulationError(
                f"station out of range: src={src!r}, dst={dst!r}, n={n!r}"
            )
        return (dst - src) % n

    def token_walk_time(self, src: int, dst: int) -> float:
        """Time for the token to travel from ``src`` to ``dst``.

        A zero-hop journey is free; otherwise the per-hop share of the walk
        time accumulates and the token transmission is paid once.  A full
        lap therefore costs exactly ``Θ``.
        """
        k = self.hops(src, dst)
        if k == 0:
            return 0.0
        return k * self.ring.walk_time / self.ring.n_stations + self.ring.token_time

    def single_hop_time(self) -> float:
        """Token travel time to the immediate downstream neighbour."""
        return self.token_walk_time(0, 1 % max(self.ring.n_stations, 1))


@dataclass
class PendingMessage:
    """One synchronous message awaiting (or under) transmission.

    Attributes:
        stream_index: which stream of the message set produced it.
        station: the ring station it sits at.
        arrival_time: when it arrived.
        deadline: absolute deadline (arrival + period).
        payload_bits: total payload to transmit.
        remaining_bits: payload bits still untransmitted.
        priority: scheduling priority (smaller = more urgent; the PDP uses
            the RM index, the TTP ignores it).
        completion_time: set when the last bit finishes.
    """

    stream_index: int
    station: int
    arrival_time: float
    deadline: float
    payload_bits: float
    remaining_bits: float
    priority: int
    completion_time: float | None = None

    @property
    def complete(self) -> bool:
        """True when fully transmitted."""
        return self.remaining_bits <= 1e-9

    def consume(self, bits: float) -> None:
        """Mark ``bits`` of payload as transmitted."""
        if bits < 0:
            raise SimulationError(f"cannot transmit negative bits: {bits!r}")
        self.remaining_bits = max(0.0, self.remaining_bits - bits)


@dataclass
class StationQueue:
    """FIFO queue of pending synchronous messages at one station.

    The paper's model has one synchronous stream per station, so messages
    in a station queue share a stream and FIFO order preserves both
    arrival order and deadline order.
    """

    station: int
    messages: list[PendingMessage] = field(default_factory=list)

    def push(self, message: PendingMessage) -> None:
        """Enqueue a newly arrived message."""
        if message.station != self.station:
            raise SimulationError(
                f"message for station {message.station!r} pushed to queue "
                f"of station {self.station!r}"
            )
        self.messages.append(message)

    def head(self) -> PendingMessage | None:
        """The message currently eligible for transmission, if any."""
        return self.messages[0] if self.messages else None

    def pop_complete(self) -> PendingMessage | None:
        """Remove and return the head if it has finished transmission."""
        head = self.head()
        if head is not None and head.complete:
            return self.messages.pop(0)
        return None

    @property
    def backlog_bits(self) -> float:
        """Total untransmitted payload bits queued at this station."""
        return sum(m.remaining_bits for m in self.messages)

    def __len__(self) -> int:
        return len(self.messages)


def build_station_queues(message_set: MessageSet, n_stations: int) -> list[StationQueue]:
    """One queue per ring station; streams must fit on the ring."""
    for stream in message_set:
        if stream.station >= n_stations:
            raise SimulationError(
                f"stream assigned to station {stream.station!r} but the ring "
                f"has only {n_stations!r} stations"
            )
    return [StationQueue(station=i) for i in range(n_stations)]
