"""Instrumentation: deadline accounting and protocol statistics.

The validation story needs exactly three things from a simulation run:
did any synchronous message miss its deadline, how close did messages come
(response times), and — for the timed token protocol — how the actual
token rotation times behaved against the TTRT bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.faults.stats import FaultStats
from repro.obs import metrics as _metrics

__all__ = ["DeadlineStats", "FaultStats", "RotationStats", "SimulationReport"]


@dataclass
class DeadlineStats:
    """Per-stream deadline accounting.

    Attributes:
        stream_index: which stream this tracks.
        completed: messages fully transmitted.
        missed: messages that completed after their deadline *or* were
            still incomplete at their deadline when the run ended.
        max_response: largest observed (completion - arrival) time.
        total_response: sum of response times (for means).
        responses: individual response-time samples, populated only when
            the simulator is configured to collect them (bounded by
            ``sample_limit``; beyond it, aggregate stats keep accumulating
            but no further samples are stored).
        sample_limit: cap on stored samples; None disables collection.
    """

    stream_index: int
    completed: int = 0
    missed: int = 0
    max_response: float = 0.0
    total_response: float = 0.0
    responses: list[float] = field(default_factory=list)
    sample_limit: int | None = None

    def record_completion(
        self, arrival: float, deadline: float, completion: float
    ) -> None:
        """Account one finished message."""
        if completion < arrival:
            raise SimulationError(
                f"completion {completion!r} precedes arrival {arrival!r}"
            )
        response = completion - arrival
        self.completed += 1
        self.total_response += response
        self.max_response = max(self.max_response, response)
        if self.sample_limit is not None and len(self.responses) < self.sample_limit:
            self.responses.append(response)
        if completion > deadline + 1e-12:
            self.missed += 1

    def record_unfinished(self) -> None:
        """Account a message still pending past its deadline at run end."""
        self.missed += 1

    @property
    def mean_response(self) -> float:
        """Average response time over completed messages (0 when none)."""
        return self.total_response / self.completed if self.completed else 0.0

    def response_percentile(self, q: float) -> float:
        """Percentile (0–100) of the *collected* response samples.

        Requires sample collection to be enabled and non-empty; raises
        :class:`SimulationError` otherwise rather than guessing.
        """
        if not 0.0 <= q <= 100.0:
            raise SimulationError(f"percentile must be in [0, 100], got {q!r}")
        if not self.responses:
            raise SimulationError(
                "no response samples collected; enable collect_responses on "
                "the simulator config"
            )
        ordered = sorted(self.responses)
        if len(ordered) == 1:
            return ordered[0]
        position = q / 100.0 * (len(ordered) - 1)
        lower = int(position)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = position - lower
        return ordered[lower] * (1 - fraction) + ordered[upper] * fraction


@dataclass
class RotationStats:
    """Token rotation time statistics at one observation station."""

    station: int
    count: int = 0
    total: float = 0.0
    maximum: float = 0.0
    minimum: float = float("inf")

    def record(self, rotation_time: float) -> None:
        """Account one observed token rotation."""
        if rotation_time < 0:
            raise SimulationError(
                f"rotation time must be non-negative, got {rotation_time!r}"
            )
        self.count += 1
        self.total += rotation_time
        self.maximum = max(self.maximum, rotation_time)
        self.minimum = min(self.minimum, rotation_time)

    @property
    def mean(self) -> float:
        """Average rotation time (0 when never observed)."""
        return self.total / self.count if self.count else 0.0


@dataclass
class SimulationReport:
    """Aggregate outcome of one simulation run.

    Attributes:
        duration: simulated time span, seconds.
        streams: per-stream deadline statistics, indexed by stream.
        rotations: token rotation statistics per observed station
            (populated by the TTP simulator).
        sync_busy_time: medium time spent on synchronous payload+overhead.
        async_busy_time: medium time spent on asynchronous frames.
        token_time: medium time spent walking/passing the token.
        faults: fault-injection accounting, present only when the run was
            configured with a :class:`~repro.faults.plan.FaultPlan`.
    """

    duration: float
    streams: list[DeadlineStats] = field(default_factory=list)
    rotations: list[RotationStats] = field(default_factory=list)
    sync_busy_time: float = 0.0
    async_busy_time: float = 0.0
    token_time: float = 0.0
    faults: FaultStats | None = None

    @property
    def total_missed(self) -> int:
        """Deadline misses across all streams."""
        return sum(s.missed for s in self.streams)

    @property
    def total_completed(self) -> int:
        """Completed messages across all streams."""
        return sum(s.completed for s in self.streams)

    @property
    def deadline_safe(self) -> bool:
        """True when no stream missed any deadline."""
        return self.total_missed == 0

    @property
    def sync_utilization(self) -> float:
        """Fraction of the run the medium carried synchronous traffic."""
        return self.sync_busy_time / self.duration if self.duration > 0 else 0.0

    @property
    def async_utilization(self) -> float:
        """Fraction of the run the medium carried asynchronous traffic."""
        return self.async_busy_time / self.duration if self.duration > 0 else 0.0

    @property
    def max_rotation(self) -> float:
        """Largest token rotation observed anywhere (0 when untracked)."""
        return max((r.maximum for r in self.rotations), default=0.0)

    def publish_metrics(self, prefix: str = "sim") -> None:
        """Fold this report's event counts into the global metrics registry.

        Called once per run by the protocol simulators (so the cost is
        one pass over the final statistics, nothing per event): message
        completions, deadline misses, and observed token rotations appear
        under ``<prefix>.*``, joining the per-event kernel counters of
        :mod:`repro.sim.engine` in run manifests and logs.
        """
        _metrics.counter(f"{prefix}.messages_completed").inc(self.total_completed)
        _metrics.counter(f"{prefix}.deadline_misses").inc(self.total_missed)
        rotations = sum(r.count for r in self.rotations)
        if rotations:
            _metrics.counter(f"{prefix}.token_rotations").inc(rotations)
            _metrics.histogram(f"{prefix}.rotation_time_s").observe(
                self.max_rotation
            )
        if self.faults is not None:
            faults = self.faults
            _metrics.counter(f"{prefix}.faults.token_losses").inc(faults.token_losses)
            _metrics.counter(f"{prefix}.faults.membership_events").inc(
                faults.membership_events
            )
            _metrics.counter(f"{prefix}.faults.corrupted_frames").inc(
                faults.corrupted_frames
            )
            _metrics.counter(f"{prefix}.faults.recovery_time_s").inc(
                faults.recovery_time_s
            )
            _metrics.counter(f"{prefix}.faults.corrupted_time_s").inc(
                faults.corrupted_time_s
            )
