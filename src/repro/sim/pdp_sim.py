"""Simulation of the priority driven protocol (IEEE 802.5, Section 4).

The simulator works at *frame arbitration* granularity, which is exactly
the granularity of the paper's analysis:

* Stations contend for the medium through the reservation field; the
  highest-priority pending synchronous message in the whole system wins
  the next transmission opportunity (rate-monotonic priorities).
* A transmission in progress is never preempted — a higher-priority
  arrival waits for the current frame to finish, which is the blocking
  phenomenon Lemma 4.1 bounds.
* Each frame occupies the medium for its *effective* time: the larger of
  the frame transmission time and the header-return time ``Θ`` (the
  transmitter must examine the reservation field of its own returning
  header before the medium is free; Section 4.3, cases 1 and 2).
* Token economics differ by variant: the **standard** protocol issues a
  free token after every frame, so the token must travel to the next
  claimant each time (a full lap when the same station transmits again);
  the **modified** protocol lets the highest-priority station keep
  transmitting back-to-back.
* Saturating asynchronous traffic (every station always has a low-priority
  frame ready) fills every gap, maximizing blocking — the worst case the
  analysis assumes.

Two token-walk models are provided: ``ACTUAL`` uses the real hop distance
from the releasing station to the next claimant, while ``AVERAGE`` charges
the analysis' expected ``Θ/2`` per acquisition.  The analysis of Theorem
4.1 is calibrated to the average (the paper states the token circulating
overhead "has been assumed to be Θ/2 on the average"), so validation tests
use ``AVERAGE``; studies of real rings use ``ACTUAL``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.analysis.pdp import PDPVariant
from repro.errors import ConfigurationError, SimulationError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.messages.message_set import MessageSet
from repro.network.frames import FrameFormat
from repro.network.ring import RingNetwork
from repro.sim.engine import Simulator
from repro.sim.token_ring import PendingMessage, RingGeometry, StationQueue
from repro.sim.trace import DeadlineStats, SimulationReport
from repro.sim.traffic import (
    ArrivalPhasing,
    PoissonAsyncTraffic,
    SynchronousTraffic,
)

__all__ = ["TokenWalkModel", "PDPSimConfig", "PDPRingSimulator"]


class TokenWalkModel(enum.Enum):
    """How token travel between transmissions is charged."""

    #: Real hop distance from the releasing station to the next claimant.
    ACTUAL = "actual"
    #: The analysis' expected cost: ``Θ/2`` per token acquisition.
    AVERAGE = "average"


@dataclass(frozen=True)
class PDPSimConfig:
    """Configuration of one PDP simulation run.

    Attributes:
        variant: standard or modified IEEE 802.5.
        phasing: first-arrival phasing of the synchronous streams.
        phasing_seed: RNG seed for random phasing.
        async_saturating: when True every station always has asynchronous
            frames ready (worst case); when False the ring idles between
            synchronous transmissions.
        token_walk: token travel model (see module docstring).
        collect_responses: store individual response-time samples on the
            per-stream stats (bounded by ``response_sample_limit``).
        response_sample_limit: cap on stored samples per stream.
        async_poisson: Poisson asynchronous arrivals instead of the
            saturating model; only meaningful with
            ``async_saturating=False`` (validated).
        faults: seeded lossy-medium fault schedule (token loss, frame
            corruption, membership churn).  ``None`` simulates a perfect
            medium; a plan with all rates zero is behaviourally identical
            to ``None`` (bit-identical reports, pinned by the fuzzer).
    """

    variant: PDPVariant = PDPVariant.STANDARD
    phasing: ArrivalPhasing = ArrivalPhasing.SIMULTANEOUS
    phasing_seed: int = 0
    async_saturating: bool = True
    token_walk: TokenWalkModel = TokenWalkModel.ACTUAL
    collect_responses: bool = False
    response_sample_limit: int = 10_000
    async_poisson: PoissonAsyncTraffic | None = None
    faults: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.async_poisson is not None and self.async_saturating:
            raise ConfigurationError(
                "async_poisson requires async_saturating=False; the two "
                "asynchronous models are mutually exclusive"
            )


@dataclass
class _MediumState:
    """Mutable bookkeeping of the shared medium."""

    holder: int = 0
    sync_busy: float = 0.0
    async_busy: float = 0.0
    token_busy: float = 0.0


class PDPRingSimulator:
    """Discrete-event simulator of the priority driven protocol.

    Usage::

        sim = PDPRingSimulator(ring, frame, message_set,
                               PDPSimConfig(variant=PDPVariant.MODIFIED))
        report = sim.run(duration_s=2.0)
        assert report.deadline_safe
    """

    def __init__(
        self,
        ring: RingNetwork,
        frame: FrameFormat,
        message_set: MessageSet,
        config: PDPSimConfig = PDPSimConfig(),
    ):
        if len(message_set) == 0:
            raise ConfigurationError("cannot simulate an empty message set")
        self._ring = ring
        self._frame = frame
        self._message_set = message_set
        self._config = config
        self._geometry = RingGeometry(ring)
        for stream in message_set:
            if stream.station >= ring.n_stations:
                raise ConfigurationError(
                    f"stream at station {stream.station!r} does not fit a "
                    f"{ring.n_stations!r}-station ring"
                )

    # -- internal helpers ---------------------------------------------------------

    def _effective_frame_time(self, chunk_bits: float, is_full: bool) -> float:
        """Medium occupancy of one frame (Section 4.3 case analysis)."""
        theta = self._ring.theta
        if is_full:
            return max(self._frame.frame_time(self._ring.bandwidth_bps), theta)
        wire_time = self._ring.transmission_time(
            chunk_bits + self._frame.overhead_bits
        )
        return max(wire_time, theta)

    def _token_cost(self, state: _MediumState, claimant: int) -> float:
        """Cost to move transmission rights from the holder to ``claimant``."""
        if self._config.token_walk is TokenWalkModel.AVERAGE:
            return self._ring.theta / 2.0
        if claimant == state.holder:
            return self._ring.theta  # free token must make a full lap
        return self._geometry.token_walk_time(state.holder, claimant)

    def _pick_sync(
        self, queues: list[StationQueue], now: float
    ) -> PendingMessage | None:
        """The highest-priority pending synchronous message, if any.

        Ties (same priority is impossible — priorities are unique per
        stream) cannot occur; among stations the head message competes.
        """
        best: PendingMessage | None = None
        for queue in queues:
            head = queue.head()
            if head is None or head.arrival_time > now + 1e-15:
                continue
            if best is None or head.priority < best.priority:
                best = head
        return best

    # -- main loop ---------------------------------------------------------------

    def run(self, duration_s: float, max_events: int = 50_000_000) -> SimulationReport:
        """Simulate ``duration_s`` seconds of ring time.

        Messages whose deadline falls inside the run are fully accounted;
        messages still pending at the end with passed deadlines count as
        missed.
        """
        if duration_s <= 0:
            raise ConfigurationError(f"duration must be positive, got {duration_s!r}")

        traffic = SynchronousTraffic(
            self._message_set, self._config.phasing, self._config.phasing_seed
        )
        arrivals = traffic.arrivals_until(duration_s)
        arrival_cursor = 0

        async_arrivals: list[tuple[float, int]] = []
        async_cursor = 0
        if self._config.async_poisson is not None:
            async_arrivals = self._config.async_poisson.arrivals_until(
                duration_s, self._ring.n_stations, self._ring.bandwidth_bps
            )

        queues = [StationQueue(station=i) for i in range(self._ring.n_stations)]
        sample_limit = (
            self._config.response_sample_limit
            if self._config.collect_responses
            else None
        )
        stats = [
            DeadlineStats(stream_index=i, sample_limit=sample_limit)
            for i in range(len(self._message_set))
        ]
        state = _MediumState(holder=0)
        sim = Simulator()
        injector = (
            FaultInjector(self._config.faults, duration_s)
            if self._config.faults is not None
            else None
        )

        # The async round-robin pointer: saturating async traffic is served
        # from the next station downstream of the holder, as a free token
        # would be captured there.
        def ingest_arrivals(now: float) -> None:
            nonlocal arrival_cursor
            while (
                arrival_cursor < len(arrivals)
                and arrivals[arrival_cursor].arrival_time <= now + 1e-15
            ):
                message = arrivals[arrival_cursor]
                queues[message.station].push(message)
                arrival_cursor += 1

        def next_arrival_time() -> float | None:
            if arrival_cursor < len(arrivals):
                return arrivals[arrival_cursor].arrival_time
            return None

        def decide(simulator: Simulator) -> None:
            now = simulator.now
            if injector is not None:
                # Ring faults detected since the last arbitration stall the
                # medium for the token claim/recovery process before anyone
                # may transmit again.
                stall = injector.ring_stall(now)
                if stall > 0.0:
                    simulator.schedule(now + stall, decide)
                    return
            ingest_arrivals(now)
            message = self._pick_sync(queues, now)

            if message is not None:
                self._transmit_sync(
                    simulator, state, queues, stats, message, decide, injector
                )
                return

            if self._config.async_saturating:
                claimant = (state.holder + 1) % self._ring.n_stations
                self._transmit_async(simulator, state, claimant, decide)
                return

            nonlocal async_cursor
            if (
                async_cursor < len(async_arrivals)
                and async_arrivals[async_cursor][0] <= now + 1e-15
            ):
                __, station = async_arrivals[async_cursor]
                async_cursor += 1
                self._transmit_async(simulator, state, station, decide)
                return

            candidates = []
            upcoming = next_arrival_time()
            if upcoming is not None:
                candidates.append(upcoming)
            if async_cursor < len(async_arrivals):
                candidates.append(async_arrivals[async_cursor][0])
            if candidates and min(candidates) < duration_s:
                simulator.schedule(min(candidates), decide)

        sim.schedule(0.0, decide)
        sim.run_until(duration_s, max_events=max_events)

        # Arrivals released between the last processed event and the end
        # of the run were never ingested; drain them so the accounting
        # below counts every release whose deadline falls inside the run.
        ingest_arrivals(duration_s)
        self._account_unfinished(queues, stats, duration_s)
        report = SimulationReport(
            duration=duration_s,
            streams=stats,
            sync_busy_time=state.sync_busy,
            async_busy_time=state.async_busy,
            token_time=state.token_busy,
            faults=injector.stats if injector is not None else None,
        )
        report.publish_metrics("sim.pdp")
        return report

    # -- transmissions ---------------------------------------------------------------

    def _transmit_sync(
        self,
        simulator: Simulator,
        state: _MediumState,
        queues: list[StationQueue],
        stats: list[DeadlineStats],
        message: PendingMessage,
        resume,
        injector: FaultInjector | None = None,
    ) -> None:
        """Send one synchronous frame of ``message`` and reschedule."""
        info_bits = self._frame.info_bits
        chunk = min(message.remaining_bits, info_bits)
        is_full = chunk >= info_bits - 1e-9
        occupancy = self._effective_frame_time(chunk, is_full)

        same_holder = message.station == state.holder
        if self._config.variant is PDPVariant.MODIFIED and same_holder:
            token_cost = 0.0
        else:
            token_cost = self._token_cost(state, message.station)

        state.holder = message.station
        state.sync_busy += occupancy
        state.token_busy += token_cost

        if injector is not None and injector.corrupt_frame(simulator.now):
            # Corrupted frame: the medium is occupied for the full frame and
            # token walk, but no payload is delivered — the message stays at
            # the queue head and is retransmitted at the next arbitration.
            injector.record_corrupted_time(occupancy)
            simulator.schedule(simulator.now + token_cost + occupancy, resume)
            return

        message.consume(chunk)

        finish = simulator.now + token_cost + occupancy
        if message.complete:
            message.completion_time = finish
            stats[message.stream_index].record_completion(
                message.arrival_time, message.deadline, finish
            )
            popped = queues[message.station].pop_complete()
            if popped is not message:
                raise SimulationError(
                    "queue head mismatch on completion; scheduling bug"
                )
        simulator.schedule(finish, resume)

    def _transmit_async(
        self, simulator: Simulator, state: _MediumState, claimant: int, resume
    ) -> None:
        """Send one asynchronous frame from ``claimant``."""
        token_cost = self._token_cost(state, claimant)
        if self._config.async_poisson is not None:
            wire_time = self._ring.transmission_time(
                self._config.async_poisson.frame_bits
            )
            occupancy = max(wire_time, self._ring.theta)
        else:
            occupancy = self._effective_frame_time(self._frame.info_bits, True)
        state.holder = claimant
        state.async_busy += occupancy
        state.token_busy += token_cost
        simulator.schedule(simulator.now + token_cost + occupancy, resume)

    def _account_unfinished(
        self,
        queues: list[StationQueue],
        stats: list[DeadlineStats],
        end_time: float,
    ) -> None:
        """Count still-pending messages whose deadlines already passed."""
        for queue in queues:
            for message in queue.messages:
                if message.deadline <= end_time and not message.complete:
                    stats[message.stream_index].record_unfinished()
