"""Fast-path TTP simulator: tight visit loop + empty-rotation sweeps.

The scalar :class:`~repro.sim.ttp_sim.TTPRingSimulator` pays a heap
event, a closure call, and a wall of attribute lookups per token visit.
This module replays the exact same per-visit arithmetic — FDDI timer
rules, budgeted synchronous transmission, saturating asynchronous credit
— as a single Python loop over prefetched locals, and, when the ring is
provably idle (nothing queued, no saturating traffic, next release in
the future), compresses whole empty token rotations into one numpy
cumulative-sum sweep: visit times advance by exactly one ``Θ/n`` hop per
visit (``sync_time`` and ``async_time`` are ``+0.0``, an IEEE identity),
so the boundary chain, rotation statistics, and TRT timers of thousands
of visits reduce to a handful of array operations.

**Bit-identity contract** (enforced by ``repro.verify``'s
``ttp_fastpath_equiv`` property): reports equal the scalar oracle's bit
for bit — response times, rotation statistics, busy totals, verdicts.
Every accumulation is sequential (``np.cumsum`` or the same scalar
``+=`` chain), every comparison uses the scalar code's own expressions.

Unsupported configurations (Poisson asynchronous traffic) raise
:class:`~repro.errors.ConfigurationError`; ``auto`` dispatch falls back
to the scalar engine for them.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.ttp import TTPAllocation
from repro.errors import ConfigurationError, SimulationError
from repro.messages.message_set import MessageSet
from repro.network.frames import FrameFormat
from repro.network.ring import RingNetwork
from repro.obs import metrics as _metrics
from repro.sim.trace import DeadlineStats, RotationStats, SimulationReport
from repro.sim.traffic import SynchronousTraffic
from repro.sim.ttp_sim import TTPSimConfig

__all__ = ["run_ttp_fast"]


def run_ttp_fast(
    ring: RingNetwork,
    frame: FrameFormat,
    message_set: MessageSet,
    allocation: TTPAllocation,
    config: TTPSimConfig = TTPSimConfig(),
    duration_s: float = 0.0,
    max_events: int = 50_000_000,
) -> SimulationReport:
    """Simulate like :meth:`TTPRingSimulator.run`, bit for bit, faster."""
    if len(message_set) == 0:
        raise ConfigurationError("cannot simulate an empty message set")
    if len(allocation.bandwidths_s) != len(message_set):
        raise ConfigurationError(
            f"allocation covers {len(allocation.bandwidths_s)} streams "
            f"but the message set has {len(message_set)}"
        )
    if config.async_poisson is not None:
        raise ConfigurationError(
            "the fast path does not model Poisson asynchronous traffic; "
            "use the scalar engine"
        )
    if duration_s <= 0:
        raise ConfigurationError(f"duration must be positive, got {duration_s!r}")

    n = ring.n_stations
    ttrt = allocation.ttrt_s
    ttrt_edge = ttrt - 1e-15
    bandwidth = ring.bandwidth_bps
    overhead = frame.overhead_time(bandwidth)
    hop = ring.theta / n
    async_bits = (
        frame.total_bits
        if config.async_frame_bits is None
        else float(config.async_frame_bits)
    )
    async_frame_time = ring.transmission_time(async_bits)
    saturating = config.async_saturating
    track = config.track_rotations
    ceil = math.ceil

    budgets: list[float | None] = [None] * n
    for index, stream in enumerate(message_set):
        if stream.station >= n:
            raise ConfigurationError(
                f"stream at station {stream.station!r} does not fit a "
                f"{n!r}-station ring"
            )
        if budgets[stream.station] is not None:
            raise ConfigurationError(
                f"two streams mapped to station {stream.station!r}; the "
                "TTP model has one synchronous stream per station"
            )
        budgets[stream.station] = allocation.bandwidths_s[index]

    traffic = SynchronousTraffic(
        message_set, config.phasing, config.phasing_seed
    )
    arrivals = traffic.arrivals_until(duration_s)
    arrival_times = [m.arrival_time for m in arrivals]
    n_arrivals = len(arrivals)
    cursor = 0

    sample_limit = (
        config.response_sample_limit if config.collect_responses else None
    )
    stats = [
        DeadlineStats(stream_index=i, sample_limit=sample_limit)
        for i in range(len(message_set))
    ]

    # Per-station FIFO queues (completed heads stay in the list behind an
    # index, so the tail accounting below still sees everything pending).
    queues: list[list] = [[] for _ in range(n)]
    qhead = [0] * n
    pending = 0  # ingested, not-yet-completed messages across all queues

    # Scalar timer/rotation state as flat lists (RotationStats objects are
    # materialised once at the end; the update arithmetic is identical).
    trt = [0.0] * n
    last_visit: list[float | None] = [None] * n
    rot_count = [0] * n
    rot_total = [0.0] * n
    rot_max = [0.0] * n
    rot_min = [float("inf")] * n

    sync_busy = 0.0
    async_busy = 0.0
    token_busy = 0.0
    visits = 0
    swept = 0  # visits advanced by rotation sweeps
    sweep_ok = not saturating and hop > 0.0

    now = 0.0
    station = 0

    while True:
        if visits >= max_events:
            raise SimulationError(
                f"simulation exceeded {max_events} events; "
                "runaway schedule or horizon too long"
            )

        next_arrival = arrival_times[cursor] if cursor < n_arrivals else None

        if (
            sweep_ok
            and pending == 0
            and (next_arrival is None or next_arrival > now + 1e-15)
        ):
            # -- empty-rotation sweep: visits at now, now+hop, ... --------
            if next_arrival is None:
                span = duration_s - now
            else:
                span = min(duration_s, next_arrival) - now
            build = max(int(span / hop) + 3, 2)
            while True:
                chain = np.empty(build + 1)
                chain[0] = now
                chain[1:] = hop
                times = np.cumsum(chain)  # V_0 .. V_build
                upcoming = times[1:]
                bad = ~(upcoming < duration_s)
                if next_arrival is not None:
                    bad |= next_arrival <= upcoming + 1e-15
                stop = np.flatnonzero(bad)
                if stop.size:
                    count = 1 + int(stop[0])
                    ended = not bool(upcoming[count - 1] < duration_s)
                    break
                build *= 2

            visits += count
            swept += count
            acc = np.empty(count + 1)
            acc[0] = token_busy
            acc[1:] = hop
            token_busy = float(np.cumsum(acc)[-1])
            # sync_busy/async_busy gain += 0.0 per visit — an IEEE identity.

            for offset in range(min(n, count)):
                visited = times[offset:count:n]
                st = station + offset
                if st >= n:
                    st -= n
                first = float(visited[0])
                diffs = visited[1:] - visited[:-1]
                if track:
                    prev = last_visit[st]
                    if prev is None:
                        rotations = diffs
                    else:
                        rotations = np.concatenate(([first - prev], diffs))
                    if rotations.size:
                        rot_count[st] += int(rotations.size)
                        acc = np.empty(rotations.size + 1)
                        acc[0] = rot_total[st]
                        acc[1:] = rotations
                        rot_total[st] = float(np.cumsum(acc)[-1])
                        top = float(np.max(rotations))
                        if top > rot_max[st]:
                            rot_max[st] = top
                        low = float(np.min(rotations))
                        if low < rot_min[st]:
                            rot_min[st] = low
                    last_visit[st] = float(visited[-1])
                elapsed0 = first - trt[st]
                if elapsed0 >= ttrt_edge or (
                    diffs.size and not bool(np.all(diffs < ttrt_edge))
                ):
                    # Rare: a rotation reaches TTRT — replay the scalar
                    # timer rules visit by visit for this station.
                    timer = trt[st]
                    for value in visited:
                        value = float(value)
                        elapsed = value - timer
                        if elapsed >= ttrt_edge:
                            timer += int(elapsed // ttrt) * ttrt
                        else:
                            timer = value
                    trt[st] = timer
                else:
                    trt[st] = float(visited[-1])

            if ended:
                break
            now = float(times[count])
            station += count
            station %= n
            continue

        # -- one token visit, scalar (same arithmetic as the oracle) -------
        visits += 1

        while cursor < n_arrivals and arrival_times[cursor] <= now + 1e-15:
            message = arrivals[cursor]
            queues[message.station].append(message)
            pending += 1
            cursor += 1

        if track:
            prev = last_visit[station]
            if prev is not None:
                rotation = now - prev
                rot_count[station] += 1
                rot_total[station] += rotation
                if rotation > rot_max[station]:
                    rot_max[station] = rotation
                if rotation < rot_min[station]:
                    rot_min[station] = rotation
            last_visit[station] = now

        elapsed = now - trt[station]
        if elapsed >= ttrt_edge:
            trt[station] += int(elapsed // ttrt) * ttrt
            credit = 0.0
        else:
            credit = ttrt - elapsed
            trt[station] = now

        used = 0.0
        budget = budgets[station]
        if budget is not None:
            queue = queues[station]
            h = qhead[station]
            size = len(queue)
            while budget - used > overhead + 1e-15:
                if h >= size:
                    break
                message = queue[h]
                if message.arrival_time > now + used + 1e-15:
                    break
                payload_budget = (budget - used - overhead) * bandwidth
                remaining = message.remaining_bits
                chunk = remaining if remaining < payload_budget else payload_budget
                if chunk <= 0 and remaining > 0:
                    break
                new_remaining = remaining - chunk
                if new_remaining < 0.0:
                    new_remaining = 0.0
                message.remaining_bits = new_remaining
                used += overhead + chunk / bandwidth
                if new_remaining <= 1e-9:
                    finish = now + used
                    message.completion_time = finish
                    stats[message.stream_index].record_completion(
                        message.arrival_time, message.deadline, finish
                    )
                    h += 1
                    pending -= 1
                else:
                    break
            qhead[station] = h
        sync_busy += used

        async_time = 0.0
        if saturating and async_frame_time > 0:
            if credit > 1e-15:
                async_time = (
                    ceil(credit / async_frame_time - 1e-12) * async_frame_time
                )
        async_busy += async_time

        token_busy += hop
        departure = now + used + async_time + hop
        if not (departure < duration_s):
            break
        station += 1
        if station == n:
            station = 0
        now = departure

    # -- tail accounting ----------------------------------------------------
    for queue, h in zip(queues, qhead):
        for message in queue[h:]:
            if message.deadline <= duration_s and not message.complete:
                stats[message.stream_index].record_unfinished()
    for message in arrivals[cursor:]:
        if message.deadline <= duration_s and not message.complete:
            stats[message.stream_index].record_unfinished()

    rotations = (
        [
            RotationStats(
                station=i,
                count=rot_count[i],
                total=rot_total[i],
                maximum=rot_max[i],
                minimum=rot_min[i],
            )
            for i in range(n)
        ]
        if track
        else []
    )
    report = SimulationReport(
        duration=duration_s,
        streams=stats,
        rotations=rotations,
        sync_busy_time=sync_busy,
        async_busy_time=async_busy,
        token_time=token_busy,
    )
    _metrics.counter("sim.ttp.token_visits").inc(float(visits))
    _metrics.counter("sim.fastpath.ttp.runs").inc()
    _metrics.counter("sim.fastpath.ttp.visits").inc(visits)
    _metrics.counter("sim.fastpath.ttp.swept").inc(swept)
    report.publish_metrics("sim.ttp")
    return report
