"""Physical and link-layer model of a token ring network.

This subpackage provides the substrate shared by both protocols studied in
the paper:

* :class:`~repro.network.ring.RingNetwork` — the physical ring (stations,
  spacing, per-station bit delays, token length) and the derived latencies
  ``W_T`` (token walk time) and ``Θ`` (walk time plus token transmission).
* :class:`~repro.network.frames.FrameFormat` — the information/overhead
  split of a MAC frame and the frame-counting arithmetic (``K_i``/``L_i``)
  from Section 4.2 of the paper.
* :mod:`~repro.network.standards` — ready-made IEEE 802.5 and FDDI
  configurations with the constants used in the paper's Section 6.2.
"""

from repro.network.frames import FrameFormat, FrameSplit
from repro.network.latency import (
    LatencyBreakdown,
    latency_breakdown,
    wasted_fraction_high_bandwidth,
    wasted_fraction_low_bandwidth,
)
from repro.network.ring import RingNetwork
from repro.network.standards import (
    FDDI_STATION_BIT_DELAY,
    FDDI_TOKEN_BITS,
    IEEE_802_5_STATION_BIT_DELAY,
    IEEE_802_5_TOKEN_BITS,
    PAPER_FRAME_OVERHEAD_BITS,
    PAPER_VELOCITY_FACTOR,
    fddi_ring,
    ieee_802_5_ring,
    paper_frame_format,
)

__all__ = [
    "FrameFormat",
    "FrameSplit",
    "RingNetwork",
    "LatencyBreakdown",
    "latency_breakdown",
    "wasted_fraction_low_bandwidth",
    "wasted_fraction_high_bandwidth",
    "ieee_802_5_ring",
    "fddi_ring",
    "paper_frame_format",
    "IEEE_802_5_STATION_BIT_DELAY",
    "IEEE_802_5_TOKEN_BITS",
    "FDDI_STATION_BIT_DELAY",
    "FDDI_TOKEN_BITS",
    "PAPER_FRAME_OVERHEAD_BITS",
    "PAPER_VELOCITY_FACTOR",
]
