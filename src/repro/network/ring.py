"""The physical ring model (Section 3.1 of the paper).

A :class:`RingNetwork` captures everything about the ring that the
schedulability analyses need:

* ``W_T`` — the *token walk time*: signal propagation once around the ring
  plus the per-station ring/buffer latency.
* ``Θ`` (:attr:`RingNetwork.theta`) — ``W_T`` plus the time to transmit the
  token itself.  This is the effective cost of passing the token once
  around the ring, and it is the quantity that stops shrinking as bandwidth
  grows (propagation delay is bandwidth independent), which drives the
  paper's headline non-monotonicity for the priority driven protocol.

The model is deliberately frozen: analyses for different bandwidths are
produced with :meth:`RingNetwork.with_bandwidth`, which keeps sweep code
free of mutation bugs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import propagation_delay, transmission_time

__all__ = ["RingNetwork"]


@dataclass(frozen=True)
class RingNetwork:
    """Physical parameters of a token ring and the latencies derived from them.

    Attributes:
        n_stations: number of stations on the ring (``n``).
        station_spacing_m: distance between neighbouring stations (``d``),
            in meters; the ring circumference is ``n * d``.
        station_bit_delay: per-station ring/buffer latency, in bits
            (4 bits for IEEE 802.5 interfaces, 75 for FDDI in the paper).
        token_bits: length of the token frame, in bits.
        bandwidth_bps: link bandwidth ``BW``, bits per second.
        velocity_factor: signal speed as a fraction of c (0.75 in the paper).
    """

    n_stations: int
    station_spacing_m: float
    station_bit_delay: float
    token_bits: float
    bandwidth_bps: float
    velocity_factor: float = 0.75

    def __post_init__(self) -> None:
        if self.n_stations < 1:
            raise ConfigurationError(
                f"a ring needs at least one station, got {self.n_stations!r}"
            )
        if self.station_spacing_m < 0:
            raise ConfigurationError(
                f"station spacing must be non-negative, got {self.station_spacing_m!r}"
            )
        if self.station_bit_delay < 0:
            raise ConfigurationError(
                f"station bit delay must be non-negative, got {self.station_bit_delay!r}"
            )
        if self.token_bits < 0:
            raise ConfigurationError(
                f"token length must be non-negative, got {self.token_bits!r}"
            )
        if self.bandwidth_bps <= 0:
            raise ConfigurationError(
                f"bandwidth must be positive, got {self.bandwidth_bps!r}"
            )
        if not 0.0 < self.velocity_factor <= 1.0:
            raise ConfigurationError(
                f"velocity factor must be in (0, 1], got {self.velocity_factor!r}"
            )

    # -- geometry -------------------------------------------------------------

    @property
    def ring_length_m(self) -> float:
        """Circumference of the ring in meters (``n * d``)."""
        return self.n_stations * self.station_spacing_m

    # -- latency components -----------------------------------------------------

    @property
    def propagation_delay_s(self) -> float:
        """One-lap signal propagation delay; bandwidth independent."""
        return propagation_delay(self.ring_length_m, self.velocity_factor)

    @property
    def station_latency_s(self) -> float:
        """Total per-station ring/buffer latency for one lap, in seconds.

        Each station delays the bit stream by ``station_bit_delay`` bit
        times, so the total shrinks as ``1/BW``.
        """
        return transmission_time(
            self.n_stations * self.station_bit_delay, self.bandwidth_bps
        )

    @property
    def token_time(self) -> float:
        """Time to transmit the token frame itself."""
        return transmission_time(self.token_bits, self.bandwidth_bps)

    # -- aggregate latencies -----------------------------------------------------

    @property
    def walk_time(self) -> float:
        """``W_T``: ring + buffer latency plus propagation delay, one lap."""
        return self.propagation_delay_s + self.station_latency_s

    @property
    def theta(self) -> float:
        """``Θ = W_T +`` token transmission time (Section 3.1)."""
        return self.walk_time + self.token_time

    @property
    def latency_bits(self) -> float:
        """``Q``: token length plus ring latency, expressed in bits.

        This is the bandwidth-dependent part of ``Θ`` as used in the
        paper's equation (14): ``Θ = P + Q / BW`` with ``P`` the constant
        propagation delay.
        """
        return self.token_bits + self.n_stations * self.station_bit_delay

    # -- derivation helpers --------------------------------------------------------

    def with_bandwidth(self, bandwidth_bps: float) -> "RingNetwork":
        """Return a copy of this ring at a different bandwidth."""
        return dataclasses.replace(self, bandwidth_bps=bandwidth_bps)

    def with_stations(self, n_stations: int) -> "RingNetwork":
        """Return a copy of this ring with a different station count."""
        return dataclasses.replace(self, n_stations=n_stations)

    def transmission_time(self, size_bits: float) -> float:
        """Time to clock ``size_bits`` onto this ring's medium."""
        return transmission_time(size_bits, self.bandwidth_bps)
