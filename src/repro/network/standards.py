"""Ready-made ring configurations matching the paper's Section 6.2.

The comparison in the paper fixes:

* ``n = 100`` stations, ``d = 100`` meters between neighbours,
* signal speed 75% of c,
* per-station bit delay 4 bits (IEEE 802.5) or 75 bits (FDDI),
* frame overhead ``F_ovhd^b = 112`` bits,
* 64-byte frame payloads.

Token lengths come from the respective standards: the 802.5 token is a
3-octet (24-bit) frame; the FDDI token (preamble + SD + FC + ED) occupies
22 symbols = 88 bits.  Both enter the analysis only through ``Θ``, and the
figure shapes are insensitive to tens of bits either way.
"""

from __future__ import annotations

from repro.network.frames import FrameFormat
from repro.network.ring import RingNetwork
from repro.units import bytes_to_bits

__all__ = [
    "IEEE_802_5_STATION_BIT_DELAY",
    "IEEE_802_5_TOKEN_BITS",
    "FDDI_STATION_BIT_DELAY",
    "FDDI_TOKEN_BITS",
    "PAPER_FRAME_OVERHEAD_BITS",
    "PAPER_FRAME_PAYLOAD_BYTES",
    "PAPER_N_STATIONS",
    "PAPER_STATION_SPACING_M",
    "PAPER_VELOCITY_FACTOR",
    "ieee_802_5_ring",
    "fddi_ring",
    "paper_frame_format",
]

#: Per-station ring/buffer latency of an IEEE 802.5 interface, in bits.
IEEE_802_5_STATION_BIT_DELAY = 4.0

#: Per-station ring/buffer latency of an FDDI interface, in bits.
FDDI_STATION_BIT_DELAY = 75.0

#: IEEE 802.5 token: SD + AC + ED = 3 octets.
IEEE_802_5_TOKEN_BITS = 24.0

#: FDDI token: preamble (16 symbols) + SD (2) + FC (2) + ED (2) = 88 bits.
FDDI_TOKEN_BITS = 88.0

#: Frame header/trailer size used throughout the paper's experiments.
PAPER_FRAME_OVERHEAD_BITS = 112.0

#: Frame payload used for the reported experiments (64 bytes).
PAPER_FRAME_PAYLOAD_BYTES = 64.0

#: Number of stations in the paper's comparison.
PAPER_N_STATIONS = 100

#: Distance between neighbouring stations in the paper's comparison.
PAPER_STATION_SPACING_M = 100.0

#: Signal speed as a fraction of c in the paper's comparison.
PAPER_VELOCITY_FACTOR = 0.75


def ieee_802_5_ring(
    bandwidth_bps: float,
    n_stations: int = PAPER_N_STATIONS,
    station_spacing_m: float = PAPER_STATION_SPACING_M,
    velocity_factor: float = PAPER_VELOCITY_FACTOR,
) -> RingNetwork:
    """An IEEE 802.5-style ring with the paper's physical constants."""
    return RingNetwork(
        n_stations=n_stations,
        station_spacing_m=station_spacing_m,
        station_bit_delay=IEEE_802_5_STATION_BIT_DELAY,
        token_bits=IEEE_802_5_TOKEN_BITS,
        bandwidth_bps=bandwidth_bps,
        velocity_factor=velocity_factor,
    )


def fddi_ring(
    bandwidth_bps: float,
    n_stations: int = PAPER_N_STATIONS,
    station_spacing_m: float = PAPER_STATION_SPACING_M,
    velocity_factor: float = PAPER_VELOCITY_FACTOR,
) -> RingNetwork:
    """An FDDI-style ring with the paper's physical constants."""
    return RingNetwork(
        n_stations=n_stations,
        station_spacing_m=station_spacing_m,
        station_bit_delay=FDDI_STATION_BIT_DELAY,
        token_bits=FDDI_TOKEN_BITS,
        bandwidth_bps=bandwidth_bps,
        velocity_factor=velocity_factor,
    )


def paper_frame_format(
    payload_bytes: float = PAPER_FRAME_PAYLOAD_BYTES,
    overhead_bits: float = PAPER_FRAME_OVERHEAD_BITS,
) -> FrameFormat:
    """The frame format of the paper's experiments (64 B payload, 112 b overhead)."""
    return FrameFormat(
        info_bits=bytes_to_bits(payload_bytes), overhead_bits=overhead_bits
    )
