"""Latency decomposition and the bandwidth-waste analysis of Section 6.2.

The paper explains the non-monotone performance of the priority driven
protocol with a simple decomposition of the token-passing cost::

    Θ = P + Q / BW

where ``P`` is the (bandwidth-independent) signal propagation delay and
``Q`` is the sum of the token length and the ring latency in bits.  The
fraction of bandwidth wasted per transmitted frame is then

* ``F_ovhd^b / F_info^b`` while ``F > Θ`` (low bandwidth: a constant), and
* ``(Θ - F_info) / Θ`` once ``Θ > F`` (high bandwidth: grows towards 1,
  equation (14) of the paper).

These functions expose that decomposition for tests, examples, and the
crossover-locating utilities in :mod:`repro.experiments`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.frames import FrameFormat
from repro.network.ring import RingNetwork

__all__ = [
    "LatencyBreakdown",
    "latency_breakdown",
    "wasted_fraction_low_bandwidth",
    "wasted_fraction_high_bandwidth",
    "effective_frame_time",
    "theta_crossover_bandwidth",
]


@dataclass(frozen=True)
class LatencyBreakdown:
    """The components of ``Θ`` for one ring configuration, in seconds.

    Attributes:
        propagation: one-lap signal propagation delay (``P`` in eq. 14).
        station_latency: total per-station buffer latency for one lap.
        token_time: transmission time of the token frame.
        theta: the sum of the three components.
        latency_bits: the bandwidth-dependent bit count ``Q``.
    """

    propagation: float
    station_latency: float
    token_time: float
    theta: float
    latency_bits: float


def latency_breakdown(ring: RingNetwork) -> LatencyBreakdown:
    """Decompose ``Θ`` for ``ring`` into its components."""
    return LatencyBreakdown(
        propagation=ring.propagation_delay_s,
        station_latency=ring.station_latency_s,
        token_time=ring.token_time,
        theta=ring.theta,
        latency_bits=ring.latency_bits,
    )


def effective_frame_time(ring: RingNetwork, frame: FrameFormat) -> float:
    """Effective medium occupancy per full frame under the PDP.

    Priority arbitration requires the transmitting station to see its own
    frame header return, so the medium is busy for ``max(F, Θ)`` per frame
    (Section 4.3, cases 1 and 2).
    """
    return max(frame.frame_time(ring.bandwidth_bps), ring.theta)


def wasted_fraction_low_bandwidth(frame: FrameFormat) -> float:
    """Wasted-bandwidth fraction while ``F > Θ``: ``F_ovhd^b / F_info^b``.

    Bandwidth independent, which is why the PDP initially *improves* with
    bandwidth — the absolute time lost per frame shrinks while the fraction
    stays constant.
    """
    return frame.overhead_bits / frame.info_bits


def wasted_fraction_high_bandwidth(ring: RingNetwork, frame: FrameFormat) -> float:
    """Wasted-bandwidth fraction once ``Θ > F`` (equation (14)).

    ``(Θ - F_info) / Θ`` with ``Θ = P + Q/BW``; approaches 1 as bandwidth
    grows because ``F_info`` shrinks like ``1/BW`` while ``P`` does not.
    """
    theta = ring.theta
    f_info = frame.info_time(ring.bandwidth_bps)
    return (theta - f_info) / theta


def theta_crossover_bandwidth(ring: RingNetwork, frame: FrameFormat) -> float:
    """Bandwidth (bps) at which ``F == Θ`` for this ring geometry.

    Below the returned value frames outlast the token walk (``F > Θ``, the
    low-bandwidth regime); above it the token walk dominates.  Derived by
    solving ``F^b / BW = P + Q / BW`` for ``BW``:

        ``BW* = (F^b - Q) / P``

    Returns ``inf`` when the frame is never longer than the latency bits
    (``F^b <= Q``), i.e. the ring is always in the high-latency regime.
    """
    numerator = frame.total_bits - ring.latency_bits
    if numerator <= 0.0:
        return float("inf")
    return numerator / ring.propagation_delay_s
