"""MAC frame formats and the frame-splitting arithmetic of Section 4.2.

Both protocols transmit messages as a sequence of frames.  Each frame
carries ``info_bits`` of payload plus ``overhead_bits`` of header/trailer
(preamble, delimiters, addresses, FCS — 112 bits in the paper's
experiments).  A synchronous message of ``C_i^b`` payload bits therefore
splits into

* ``L_i = floor(C_i^b / F_info^b)`` full frames, and
* ``K_i = ceil(C_i^b / F_info^b)`` frames in total,

so ``K_i == L_i`` means every frame is full and ``K_i == L_i + 1`` means
the last frame is short.  :meth:`FrameFormat.split` returns this bookkeeping
as a :class:`FrameSplit`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.units import transmission_time

__all__ = ["FrameFormat", "FrameSplit"]


@dataclass(frozen=True)
class FrameSplit:
    """How one message divides into frames (notation of Section 4.2).

    Attributes:
        payload_bits: the message payload length ``C_i^b``.
        full_frames: ``L_i``, number of maximum-length frames.
        total_frames: ``K_i``, total number of frames.
        last_frame_info_bits: payload bits carried by the final frame
            (equals ``info_bits`` when ``K_i == L_i`` and the residual
            otherwise; zero only for an empty message).
    """

    payload_bits: float
    full_frames: int
    total_frames: int
    last_frame_info_bits: float

    @property
    def has_short_last_frame(self) -> bool:
        """True when ``K_i == L_i + 1`` (the last frame is not full)."""
        return self.total_frames == self.full_frames + 1


@dataclass(frozen=True)
class FrameFormat:
    """The information/overhead split of a MAC frame.

    Attributes:
        info_bits: maximum payload bits per frame (``F_info^b``).
        overhead_bits: header + trailer bits per frame (``F_ovhd^b``).
    """

    info_bits: float
    overhead_bits: float

    def __post_init__(self) -> None:
        if self.info_bits <= 0:
            raise ConfigurationError(
                f"frame info field must be positive, got {self.info_bits!r}"
            )
        if self.overhead_bits < 0:
            raise ConfigurationError(
                f"frame overhead must be non-negative, got {self.overhead_bits!r}"
            )

    # -- sizes --------------------------------------------------------------

    @property
    def total_bits(self) -> float:
        """``F^b``: total length of a maximum-size frame in bits."""
        return self.info_bits + self.overhead_bits

    @property
    def overhead_fraction(self) -> float:
        """Fraction of a full frame spent on overhead, ``F_ovhd^b / F^b``."""
        return self.overhead_bits / self.total_bits

    # -- times --------------------------------------------------------------

    def frame_time(self, bandwidth_bps: float) -> float:
        """``F``: time to transmit a maximum-size frame, in seconds."""
        return transmission_time(self.total_bits, bandwidth_bps)

    def info_time(self, bandwidth_bps: float) -> float:
        """``F_info``: time to transmit the payload part of a full frame."""
        return transmission_time(self.info_bits, bandwidth_bps)

    def overhead_time(self, bandwidth_bps: float) -> float:
        """``F_ovhd``: time to transmit the overhead part of a frame."""
        return transmission_time(self.overhead_bits, bandwidth_bps)

    def partial_frame_time(self, payload_bits: float, bandwidth_bps: float) -> float:
        """Time to transmit a frame carrying ``payload_bits`` of payload.

        Overhead bits are always transmitted in full, even for a short
        frame.  ``payload_bits`` must not exceed ``info_bits``.
        """
        if payload_bits > self.info_bits:
            raise ConfigurationError(
                f"payload of {payload_bits!r} bits exceeds the frame info "
                f"field of {self.info_bits!r} bits"
            )
        return transmission_time(payload_bits + self.overhead_bits, bandwidth_bps)

    # -- splitting ----------------------------------------------------------

    def split(self, payload_bits: float) -> FrameSplit:
        """Split a message payload into frames (computes ``K_i``, ``L_i``).

        **Zero-payload policy**: a zero-length message occupies *zero*
        frames and zero wire bits.  There is nothing to transmit, both
        analyses charge it nothing (:func:`repro.analysis.pdp
        .pdp_augmented_length` returns 0, the local TTP scheme allocates
        only the per-visit overhead), and the simulators complete it
        instantly — so charging it a frame here would double-count
        overhead nowhere else accounted.  The scalar and vectorized
        paths implement this identically; :mod:`repro.verify` fuzzes the
        bit-level agreement.

        Floating-point payload sizes are accepted because Monte Carlo
        sampling produces continuous lengths; the frame counts are still
        exact integers.
        """
        if payload_bits < 0:
            raise ConfigurationError(
                f"payload must be non-negative, got {payload_bits!r}"
            )
        if payload_bits == 0:
            return FrameSplit(0.0, 0, 0, 0.0)
        ratio = payload_bits / self.info_bits
        full = int(math.floor(ratio))
        # max() guards against subnormal payloads whose ratio underflows to
        # zero: any positive payload needs at least one frame.  The same
        # expression (ceil then clamp) appears in split_counts; keep the
        # two in lockstep.
        total = max(int(math.ceil(ratio)), 1)
        if total == full:
            last = float(self.info_bits)
        else:
            last = float(payload_bits - full * self.info_bits)
        return FrameSplit(float(payload_bits), full, total, last)

    def split_counts(self, payloads_bits: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized frame counts ``(K_i, L_i)`` for a payload array.

        Returns ``(total_frames, full_frames)`` as float arrays of the same
        shape as ``payloads_bits`` (float because they enter arithmetic
        immediately; the values are exact integers).  Agrees elementwise
        and bit for bit with :meth:`split` — the same ``ratio``/floor/
        ceil/clamp sequence — including the zero-payload (zero frames)
        and subnormal-payload (at least one frame) cases.
        """
        arr = np.asarray(payloads_bits, dtype=float)
        if np.any(arr < 0):
            raise ConfigurationError("payloads must be non-negative")
        ratio = arr / self.info_bits
        full = np.floor(ratio)
        total = np.maximum(np.ceil(ratio), 1.0)
        zero = arr == 0
        if np.any(zero):
            full = np.where(zero, 0.0, full)
            total = np.where(zero, 0.0, total)
        return total, full

    def frames_needed(self, payload_bits: float) -> int:
        """``K_i``: total frames needed for ``payload_bits`` of payload."""
        return self.split(payload_bits).total_frames

    def message_wire_bits(self, payload_bits: float) -> float:
        """Total bits on the wire for a message: payload + per-frame overhead."""
        return float(payload_bits) + self.frames_needed(payload_bits) * self.overhead_bits

    def message_wire_bits_array(self, payloads_bits: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`message_wire_bits` over a payload array.

        Elementwise bit-identical to the scalar version: the frame counts
        come from :meth:`split_counts` (pinned against :meth:`split`) and
        the ``payload + K_i * F_ovhd^b`` arithmetic is the same float
        multiply-add.  Used by the columnar paths, with the scalar method
        as oracle.
        """
        arr = np.asarray(payloads_bits, dtype=float)
        total, _ = self.split_counts(arr)
        return arr + total * self.overhead_bits
