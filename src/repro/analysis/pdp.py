"""Schedulability of the priority driven protocol (Section 4, Theorem 4.1).

The priority driven protocol (PDP) implements rate-monotonic scheduling on
an IEEE 802.5 ring: messages are split into frames, stations bid for the
medium through the reservation field of passing frame headers, and the
token holding timer limits each token capture to one frame.  Two variants
are analysed:

* :attr:`PDPVariant.STANDARD` — the stock IEEE 802.5 protocol: a free
  token circulates after *every* transmitted frame, costing ``Θ/2`` on
  average per frame.
* :attr:`PDPVariant.MODIFIED` — the paper's refinement: a station keeps
  transmitting frames while it remains the highest-priority active
  station, so the ``Θ/2`` token cost is paid once per *message*.

The analysis folds every protocol overhead into an *augmented message
length* ``C'_i`` (:func:`pdp_augmented_length`), bounds priority-inversion
blocking by ``B = 2 max(F, Θ)`` (Lemma 4.1), and then applies the
Lehoczky–Sha–Ding exact test of :class:`repro.analysis.rm.ExactRMTest`,
which is precisely the paper's equation (4).

Effective frame transmission time (Section 4.3): a transmitting station
must see its own frame header return before the medium is free for the
next arbitration round, so each full frame occupies the medium for
``max(F, Θ)``; a short last frame occupies ``max(C_i - L_i·F_info +
F_ovhd, Θ)``.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import Callable, Sequence

import numpy as np

from repro.analysis.rm import ExactRMTest, GroupedExactRMTest, StreamTestDetail
from repro.errors import MessageSetError
from repro.messages.message_set import MessageSet
from repro.network.frames import FrameFormat
from repro.network.ring import RingNetwork
from repro.obs import metrics as _metrics

#: Structure-cache accounting (see ``PDPAnalysis._exact_test_for``): hits
#: and misses count lookups, evictions count LRU drops.  ``hits + misses``
#: is invariant across ``--jobs`` partitionings; the hit/miss split is not
#: (each worker process warms its own cache).
_CACHE_HITS = _metrics.counter("pdp.exact_cache.hits")
_CACHE_MISSES = _metrics.counter("pdp.exact_cache.misses")
_CACHE_EVICTIONS = _metrics.counter("pdp.exact_cache.evictions")
_CACHE_SIZE = _metrics.gauge("pdp.exact_cache.size")

__all__ = [
    "PDPVariant",
    "pdp_augmented_length",
    "pdp_augmented_lengths",
    "pdp_blocking_time",
    "PDPAnalysis",
    "PDPSetResult",
]


class PDPVariant(enum.Enum):
    """Which flavour of the priority driven protocol to analyse."""

    #: Stock IEEE 802.5: free token issued after every frame.
    STANDARD = "ieee-802.5"
    #: Modified 802.5: back-to-back frames while still highest priority.
    MODIFIED = "modified-802.5"


def pdp_blocking_time(ring: RingNetwork, frame: FrameFormat) -> float:
    """Lemma 4.1 blocking bound ``B = 2 max(F, Θ)``."""
    return 2.0 * max(frame.frame_time(ring.bandwidth_bps), ring.theta)


def pdp_augmented_length(
    payload_bits: float,
    ring: RingNetwork,
    frame: FrameFormat,
    variant: PDPVariant,
) -> float:
    """The augmented message length ``C'_i`` of Theorem 4.1, in seconds.

    ``C'_i`` is the worst-case medium occupancy of one message, including
    frame overhead bits, header-return waits, and the average token
    circulation cost ``Θ/2`` (paid per frame in the standard protocol, per
    message in the modified one).

    With ``K_i`` total frames, ``L_i`` full frames, frame time ``F`` and
    token-pass cost ``Θ``:

    * ``F <= Θ`` (high bandwidth): every frame occupies ``Θ``, so
      ``C'_i = K_i·Θ + token_cost``.
    * ``F > Θ`` (low bandwidth): full frames occupy ``F``; a short last
      frame occupies ``max(C_i - L_i·F_info + F_ovhd, Θ)``; hence
      ``C'_i = L_i·F + (K_i - L_i)·max(...) + token_cost``.

    where ``token_cost = K_i·Θ/2`` (standard) or ``Θ/2`` (modified).
    A zero-payload message costs nothing.
    """
    if payload_bits < 0:
        raise MessageSetError(f"payload must be non-negative, got {payload_bits!r}")
    if payload_bits == 0:
        return 0.0

    bandwidth = ring.bandwidth_bps
    theta = ring.theta
    split = frame.split(payload_bits)
    k_i, l_i = split.total_frames, split.full_frames
    frame_time = frame.frame_time(bandwidth)

    if variant is PDPVariant.STANDARD:
        token_cost = k_i * theta / 2.0
    elif variant is PDPVariant.MODIFIED:
        token_cost = theta / 2.0
    else:  # pragma: no cover - enum is closed
        raise MessageSetError(f"unknown PDP variant: {variant!r}")

    if frame_time <= theta:
        return k_i * theta + token_cost

    payload_time = payload_bits / bandwidth
    info_time = frame.info_time(bandwidth)
    ovhd_time = frame.overhead_time(bandwidth)
    last_frame_time = max(payload_time - l_i * info_time + ovhd_time, theta)
    return l_i * frame_time + (k_i - l_i) * last_frame_time + token_cost


def pdp_augmented_lengths(
    payloads_bits: np.ndarray,
    ring: RingNetwork,
    frame: FrameFormat,
    variant: PDPVariant,
) -> np.ndarray:
    """Vectorized :func:`pdp_augmented_length` over a whole payload array.

    One call replaces an n-stream Python loop with a handful of array
    operations; the arithmetic is identical term by term to the scalar
    version (which serves as the oracle in property tests), so the two
    agree bit for bit.  Accepts any array shape — the Monte Carlo batch
    machinery passes ``(n_probes·n_streams,)`` concatenations and
    ``(n_scales, n_streams)`` matrices alike.
    """
    arr = np.asarray(payloads_bits, dtype=float)
    if np.any(arr < 0):
        raise MessageSetError("payloads must be non-negative")

    bandwidth = ring.bandwidth_bps
    theta = ring.theta
    total, full = frame.split_counts(arr)
    frame_time = frame.frame_time(bandwidth)

    if variant is PDPVariant.STANDARD:
        token_cost = total * (theta / 2.0)
    elif variant is PDPVariant.MODIFIED:
        token_cost = np.where(arr > 0, theta / 2.0, 0.0)
    else:  # pragma: no cover - enum is closed
        raise MessageSetError(f"unknown PDP variant: {variant!r}")

    if frame_time <= theta:
        return total * theta + token_cost

    payload_time = arr / bandwidth
    info_time = frame.info_time(bandwidth)
    ovhd_time = frame.overhead_time(bandwidth)
    last_frame_time = np.maximum(payload_time - full * info_time + ovhd_time, theta)
    lengths = full * frame_time + (total - full) * last_frame_time + token_cost
    # A zero-payload message costs nothing (total == full == 0 already
    # zeroes the frame terms; the max() above would still charge theta
    # through the (K - L) factor being 0, so only token_cost needs care,
    # handled per-variant above).
    return lengths


@dataclass(frozen=True)
class PDPSetResult:
    """Outcome of the Theorem 4.1 test for a whole message set.

    Attributes:
        schedulable: True iff every stream passes equation (4).
        details: per-stream report, in RM priority order.
        augmented_lengths: the ``C'_i`` vector used, RM priority order.
        blocking: the Lemma 4.1 blocking term ``B``.
    """

    schedulable: bool
    details: tuple[StreamTestDetail, ...]
    augmented_lengths: tuple[float, ...]
    blocking: float

    @property
    def worst_ratio(self) -> float:
        """Largest per-stream minimized load ratio (> 1 means unschedulable)."""
        return max(d.min_load_ratio for d in self.details)


class PDPAnalysis:
    """Theorem 4.1 schedulability test bound to one ring + frame format.

    The expensive part of the exact test depends only on the stream
    periods, so an instance caches the :class:`ExactRMTest` structure per
    period vector and reuses it across payload scalings and bandwidth
    changes (via :meth:`with_ring`).  This makes saturation searches and
    bandwidth sweeps hundreds of times faster than rebuilding per query.
    The cache is an LRU (the precomputed matrices for a 100-stream set run
    to tens of megabytes, so hoarding one per Monte Carlo sample would
    exhaust memory); interleaved protocol comparisons over the same
    workload population benefit from a larger, shared cache — pass
    ``cache_size`` and ``shared_cache`` (see
    :meth:`repro.experiments.config.PaperParameters.pdp_analysis`, which
    shares one cache between the STANDARD and MODIFIED analyses because
    both are evaluated on identical period vectors).

    Args:
        ring: the physical ring (bandwidth included).
        frame: the MAC frame format.
        variant: which protocol variant to analyse.
        cache_size: LRU capacity in period vectors (default
            :attr:`_CACHE_SIZE`).
        shared_cache: an existing cache to attach to instead of a private
            one, so several analyses reuse each other's structures.
    """

    _CACHE_SIZE = 4

    def __init__(
        self,
        ring: RingNetwork,
        frame: FrameFormat,
        variant: PDPVariant = PDPVariant.STANDARD,
        *,
        cache_size: int | None = None,
        shared_cache: "OrderedDict[tuple[float, ...], ExactRMTest] | None" = None,
    ):
        self._ring = ring
        self._frame = frame
        self._variant = variant
        self._cache_size = self._CACHE_SIZE if cache_size is None else int(cache_size)
        if self._cache_size < 1:
            raise MessageSetError(
                f"cache size must be at least 1, got {cache_size!r}"
            )
        self._test_cache: OrderedDict[tuple[float, ...], ExactRMTest] = (
            OrderedDict() if shared_cache is None else shared_cache
        )

    # -- accessors ----------------------------------------------------------------

    @property
    def ring(self) -> RingNetwork:
        """The ring this analysis is bound to."""
        return self._ring

    @property
    def frame(self) -> FrameFormat:
        """The frame format this analysis is bound to."""
        return self._frame

    @property
    def variant(self) -> PDPVariant:
        """The protocol variant being analysed."""
        return self._variant

    @property
    def blocking(self) -> float:
        """The Lemma 4.1 blocking bound at the current bandwidth."""
        return pdp_blocking_time(self._ring, self._frame)

    def with_ring(self, ring: RingNetwork) -> "PDPAnalysis":
        """A copy bound to a different ring (shares the period-structure cache)."""
        return PDPAnalysis(
            ring,
            self._frame,
            self._variant,
            cache_size=self._cache_size,
            shared_cache=self._test_cache,
        )

    def cache_signature(self) -> dict:
        """JSON-safe identity for content-addressed result-cache keys.

        Covers everything the schedulability verdict depends on — ring,
        frame format, protocol variant — and nothing incidental (the
        exact-test structure cache is a pure accelerator).  See
        USAGE.md §13.
        """
        return {
            "analysis": "pdp",
            "ring": asdict(self._ring),
            "frame": asdict(self._frame),
            "variant": self._variant.value,
        }

    # -- core computations ------------------------------------------------------------

    #: Columnar sets at or above this size use :class:`GroupedExactRMTest`
    #: (matrix sized by distinct periods); smaller sets keep the dense
    #: test, whose per-stream ``details`` report stays available.
    _GROUPED_MIN_STREAMS = 512

    def augmented_lengths(self, message_set: MessageSet) -> np.ndarray:
        """``C'_i`` for every stream of ``message_set`` in *its own* order."""
        if getattr(message_set, "is_columnar", False):
            payloads = np.asarray(message_set.payloads_bits, dtype=float)
        else:
            payloads = np.fromiter(
                (s.payload_bits for s in message_set),
                dtype=float,
                count=len(message_set),
            )
        return pdp_augmented_lengths(payloads, self._ring, self._frame, self._variant)

    @staticmethod
    def _structure_key(ordered) -> tuple:
        """Hashable structure-cache key for object or columnar sets.

        Object sets key on the period tuple directly; columnar sets key
        on the raw bytes of the period column (hashing a million-float
        tuple would cost more than the lookup saves), namespaced so an
        object set and a table with equal periods never collide — they
        may be backed by different test classes.
        """
        if getattr(ordered, "is_columnar", False):
            return ("columnar", len(ordered), ordered.period_key())
        return ordered.periods

    def _exact_test_for(self, ordered: MessageSet) -> ExactRMTest:
        key = self._structure_key(ordered)
        test = self._test_cache.get(key)
        if test is None:
            _CACHE_MISSES.inc()
            if (
                getattr(ordered, "is_columnar", False)
                and len(ordered) >= self._GROUPED_MIN_STREAMS
            ):
                test = GroupedExactRMTest(ordered.periods)
            else:
                test = ExactRMTest(ordered.periods)
            self._test_cache[key] = test
            while len(self._test_cache) > self._cache_size:
                self._test_cache.popitem(last=False)
                _CACHE_EVICTIONS.inc()
            _CACHE_SIZE.set(len(self._test_cache))
        else:
            _CACHE_HITS.inc()
            self._test_cache.move_to_end(key)
        return test

    def is_schedulable(self, message_set: MessageSet) -> bool:
        """Theorem 4.1: can every deadline be guaranteed for all phasings?"""
        if len(message_set) == 0:
            return True
        ordered = message_set.rate_monotonic()
        test = self._exact_test_for(ordered)
        return test.is_schedulable(self.augmented_lengths(ordered), self.blocking)

    def is_schedulable_many(self, message_sets: "Sequence[MessageSet]") -> np.ndarray:
        """Theorem 4.1 verdicts for many independent message sets at once.

        Sets sharing a period vector (after rate-monotonic ordering) are
        stacked through one :meth:`ExactRMTest.is_schedulable_batch`
        evaluation; singleton period vectors take the scalar path.  Both
        paths are pinned bit-identical to calling :meth:`is_schedulable`
        per set (the batched exact test and the vectorized ``C'_i`` are
        pure performance work), which is what lets the admission service's
        micro-batcher coalesce concurrent requests without moving a single
        verdict.
        """
        verdicts = np.ones(len(message_sets), dtype=bool)
        ordered: list[MessageSet | None] = []
        groups: dict[tuple, list[int]] = {}
        for i, message_set in enumerate(message_sets):
            if len(message_set) == 0:
                ordered.append(None)  # empty sets are trivially schedulable
                continue
            ordered_set = message_set.rate_monotonic()
            ordered.append(ordered_set)
            groups.setdefault(self._structure_key(ordered_set), []).append(i)
        blocking = self.blocking
        for indices in groups.values():
            test = self._exact_test_for(ordered[indices[0]])
            if len(indices) == 1:
                i = indices[0]
                verdicts[i] = test.is_schedulable(
                    self.augmented_lengths(ordered[i]), blocking
                )
                continue
            payloads = np.stack(
                [np.asarray(ordered[i].payloads_bits, dtype=float) for i in indices]
            )
            costs = pdp_augmented_lengths(
                payloads, self._ring, self._frame, self._variant
            )
            verdicts[indices] = test.is_schedulable_batch(costs, blocking)
        return verdicts

    def schedulable_at_scales(
        self, message_set: MessageSet, scales: Sequence[float]
    ) -> np.ndarray:
        """Theorem 4.1 verdicts for ``message_set`` at many payload scales.

        One vectorized augmented-length evaluation over the
        ``(n_scales, n_streams)`` payload matrix plus one
        :meth:`ExactRMTest.is_schedulable_batch` call — the period
        structure is shared by every row, so the whole batch costs little
        more than a single scalar probe.
        """
        scale_arr = np.asarray(scales, dtype=float)
        if np.any(scale_arr < 0):
            raise MessageSetError("scales must be non-negative")
        if len(message_set) == 0:
            return np.ones(scale_arr.size, dtype=bool)
        ordered = message_set.rate_monotonic()
        test = self._exact_test_for(ordered)
        payloads = np.asarray(ordered.payloads_bits, dtype=float)
        costs = pdp_augmented_lengths(
            scale_arr[:, None] * payloads[None, :],
            self._ring,
            self._frame,
            self._variant,
        )
        return test.is_schedulable_batch(costs, self.blocking)

    def scale_prober(
        self, message_sets: Sequence[MessageSet]
    ) -> "Callable[[Sequence[int], np.ndarray], np.ndarray]":
        """A batched payload-scale predicate over a fixed population.

        Prepares each set once (rate-monotonic ordering, cached
        :class:`ExactRMTest` structure, payload vector) and returns
        ``probe(indices, scales) -> verdicts``: for each position ``j``,
        whether ``message_sets[indices[j]]`` with payloads scaled by
        ``scales[j]`` passes Theorem 4.1.  A probe computes the augmented
        lengths of *all* requested sets in one concatenated vectorized
        call; probes of the same set (same period vector) are evaluated
        through :meth:`ExactRMTest.is_schedulable_batch` as one stacked
        operation.  This is the engine behind the lockstep batched
        bisection of :func:`repro.analysis.breakdown.breakdown_scales_batch`.
        """
        prepared: list[tuple[np.ndarray, ExactRMTest | None]] = []
        for message_set in message_sets:
            if len(message_set) == 0:
                prepared.append((np.empty(0), None))
                continue
            ordered = message_set.rate_monotonic()
            payloads = np.asarray(ordered.payloads_bits, dtype=float)
            prepared.append((payloads, self._exact_test_for(ordered)))
        blocking = self.blocking

        def probe(indices: Sequence[int], scales: np.ndarray) -> np.ndarray:
            scale_arr = np.asarray(scales, dtype=float)
            segments: list[np.ndarray] = []
            offsets = [0]
            for idx, scale in zip(indices, scale_arr):
                segments.append(prepared[idx][0] * scale)
                offsets.append(offsets[-1] + segments[-1].size)
            if not segments:
                return np.empty(0, dtype=bool)
            lengths = pdp_augmented_lengths(
                np.concatenate(segments), self._ring, self._frame, self._variant
            )
            verdicts = np.empty(len(segments), dtype=bool)
            # Group probes that target the same set so they share one
            # stacked is_schedulable_batch evaluation.
            by_set: dict[int, list[int]] = {}
            for j, idx in enumerate(indices):
                by_set.setdefault(idx, []).append(j)
            for idx, positions in by_set.items():
                test = prepared[idx][1]
                if test is None:
                    for j in positions:
                        verdicts[j] = True
                    continue
                if len(positions) == 1:
                    j = positions[0]
                    verdicts[j] = test._evaluate(
                        lengths[offsets[j] : offsets[j + 1]], blocking
                    )
                else:
                    stacked = np.stack(
                        [lengths[offsets[j] : offsets[j + 1]] for j in positions]
                    )
                    verdicts[list(positions)] = test.is_schedulable_batch(
                        stacked, blocking
                    )
            return verdicts

        return probe

    def analyze(self, message_set: MessageSet) -> PDPSetResult:
        """Full per-stream report for ``message_set``."""
        ordered = message_set.rate_monotonic()
        if len(ordered) == 0:
            return PDPSetResult(True, (), (), self.blocking)
        test = self._exact_test_for(ordered)
        if not hasattr(test, "details"):
            raise MessageSetError(
                "per-stream analyze() needs the dense exact test; this "
                f"{len(ordered)}-stream columnar set routed to the grouped "
                "test, which only produces verdicts — analyze "
                "table.to_message_set() (or a slice) instead"
            )
        lengths = self.augmented_lengths(ordered)
        details = tuple(test.details(lengths, self.blocking))
        return PDPSetResult(
            schedulable=all(d.schedulable for d in details),
            details=details,
            augmented_lengths=tuple(float(c) for c in lengths),
            blocking=self.blocking,
        )
