"""Saturation scaling: drive a message set to its breakdown boundary.

Section 6.1 of the paper partitions message sets into the *unsaturated
schedulable*, *saturated schedulable*, and *unschedulable* classes.  The
breakdown (saturated) point of a set is reached by scaling all payload
lengths by a common factor λ until schedulability is about to be lost; the
utilization at that point is the set's **breakdown utilization**.

Both protocols' schedulability tests are monotone non-increasing in the
payload scale (longer messages never help), so the boundary is found by
exponential bracketing followed by bisection.  Analyses that can do better
— the timed token protocol's Theorem 5.1 is *linear* in the payloads for
any scale-invariant TTRT policy — may expose a ``saturation_scale`` method,
which :func:`breakdown_scale` will use instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable

from repro.errors import MessageSetError
from repro.messages.message_set import MessageSet

__all__ = [
    "SchedulabilityPredicate",
    "SupportsSaturationScale",
    "BreakdownResult",
    "breakdown_scale",
    "breakdown_utilization",
]

#: A predicate deciding whether a message set is schedulable.
SchedulabilityPredicate = Callable[[MessageSet], bool]


@runtime_checkable
class SupportsSaturationScale(Protocol):
    """Analyses that can compute the breakdown scale in closed form."""

    def saturation_scale(self, message_set: MessageSet) -> float:
        """Largest payload scale that keeps ``message_set`` schedulable."""
        ...  # pragma: no cover - protocol definition

    def is_schedulable(self, message_set: MessageSet) -> bool:
        """The ordinary schedulability test."""
        ...  # pragma: no cover - protocol definition


@dataclass(frozen=True)
class BreakdownResult:
    """Outcome of a saturation search.

    Attributes:
        scale: the breakdown scale λ* (``inf`` if the set never saturates —
            only possible for all-zero payloads; ``0.0`` if even
            arbitrarily short messages are unschedulable, e.g. when fixed
            overheads alone exhaust the ring).
        utilization: ``U(λ*·M)`` at the given bandwidth (0 when ``scale``
            is 0 or infinite).
        evaluations: number of predicate evaluations performed.
    """

    scale: float
    utilization: float
    evaluations: int

    @property
    def saturated(self) -> bool:
        """True when a finite positive breakdown point exists."""
        return 0.0 < self.scale < float("inf")


def _bisect_scale(
    message_set: MessageSet,
    predicate: SchedulabilityPredicate,
    rel_tol: float,
    max_doublings: int,
) -> tuple[float, int]:
    """Monotone bisection for the breakdown scale.  Returns (scale, evals)."""
    evaluations = 0

    def schedulable_at(scale: float) -> bool:
        nonlocal evaluations
        evaluations += 1
        return predicate(message_set.scaled(scale))

    # Bracket: find lo schedulable, hi unschedulable.
    if schedulable_at(1.0):
        lo, hi = 1.0, 2.0
        for _ in range(max_doublings):
            if not schedulable_at(hi):
                break
            lo, hi = hi, hi * 2.0
        else:
            return float("inf"), evaluations
    else:
        hi, lo = 1.0, 0.5
        for _ in range(max_doublings):
            if schedulable_at(lo):
                break
            hi, lo = lo, lo / 2.0
        else:
            return 0.0, evaluations

    # Bisect within [lo, hi].
    while hi - lo > rel_tol * hi:
        mid = (lo + hi) / 2.0
        if schedulable_at(mid):
            lo = mid
        else:
            hi = mid
    return lo, evaluations


def breakdown_scale(
    message_set: MessageSet,
    predicate: SchedulabilityPredicate | SupportsSaturationScale,
    rel_tol: float = 1e-4,
    max_doublings: int = 128,
) -> tuple[float, int]:
    """Largest payload scale λ keeping ``message_set`` schedulable.

    ``predicate`` is either a plain callable over message sets or an
    analysis object; analyses exposing ``saturation_scale`` (closed-form
    boundary) are used directly, others fall back to their
    ``is_schedulable`` method under bisection.

    Returns ``(scale, predicate_evaluations)``.
    """
    if len(message_set) == 0:
        raise MessageSetError("cannot saturate an empty message set")
    if rel_tol <= 0:
        raise MessageSetError(f"relative tolerance must be positive, got {rel_tol!r}")

    if isinstance(predicate, SupportsSaturationScale):
        return float(predicate.saturation_scale(message_set)), 1

    test: SchedulabilityPredicate
    if hasattr(predicate, "is_schedulable"):
        test = predicate.is_schedulable
    elif callable(predicate):
        test = predicate
    else:
        raise MessageSetError(
            f"predicate must be callable or an analysis object, got {predicate!r}"
        )

    if message_set.total_payload_bits() == 0:
        # Scaling a zero set does nothing; classify directly.
        return (float("inf") if test(message_set) else 0.0), 1

    return _bisect_scale(message_set, test, rel_tol, max_doublings)


def breakdown_utilization(
    message_set: MessageSet,
    predicate: SchedulabilityPredicate | SupportsSaturationScale,
    bandwidth_bps: float,
    rel_tol: float = 1e-4,
) -> BreakdownResult:
    """Breakdown utilization of ``message_set`` under ``predicate``.

    The utilization of the saturated set ``λ*·M`` at ``bandwidth_bps``;
    this is the quantity averaged by the Monte Carlo study of Section 6.
    """
    scale, evaluations = breakdown_scale(message_set, predicate, rel_tol)
    if scale <= 0.0 or scale == float("inf"):
        return BreakdownResult(scale=scale, utilization=0.0, evaluations=evaluations)
    utilization = message_set.scaled(scale).utilization(bandwidth_bps)
    return BreakdownResult(scale=scale, utilization=utilization, evaluations=evaluations)
