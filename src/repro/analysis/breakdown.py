"""Saturation scaling: drive a message set to its breakdown boundary.

Section 6.1 of the paper partitions message sets into the *unsaturated
schedulable*, *saturated schedulable*, and *unschedulable* classes.  The
breakdown (saturated) point of a set is reached by scaling all payload
lengths by a common factor λ until schedulability is about to be lost; the
utilization at that point is the set's **breakdown utilization**.

Both protocols' schedulability tests are monotone non-increasing in the
payload scale (longer messages never help), so the boundary is found by
exponential bracketing followed by bisection.  Analyses that can do better
— the timed token protocol's Theorem 5.1 is *linear* in the payloads for
any scale-invariant TTRT policy — may expose a ``saturation_scale`` method,
which :func:`breakdown_scale` will use instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.errors import MessageSetError
from repro.messages.message_set import MessageSet
from repro.obs import metrics as _metrics

#: Saturation-search accounting.  ``probes`` counts physical scale
#: evaluations (speculative ones included), ``batch_calls`` the batched
#: predicate invocations of the lockstep search, and ``evals_per_set``
#: the per-set probe-chain lengths.  All of these are partitioning
#: invariant: the lockstep search runs per Monte Carlo chunk inside one
#: grid cell, so every ``--jobs`` value reports identical totals.
_PROBES = _metrics.counter("breakdown.probes")
_BATCH_CALLS = _metrics.counter("breakdown.batch_calls")
_SCALAR_SEARCHES = _metrics.counter("breakdown.scalar_searches")
_SETS_SATURATED = _metrics.counter("breakdown.sets_saturated")
_EVALS_PER_SET = _metrics.histogram("breakdown.evals_per_set")

__all__ = [
    "SchedulabilityPredicate",
    "SupportsSaturationScale",
    "SupportsBatchScaleProbe",
    "BreakdownResult",
    "breakdown_scale",
    "breakdown_scales_batch",
    "breakdown_utilization",
    "breakdown_utilizations_batch",
]

#: A predicate deciding whether a message set is schedulable.
SchedulabilityPredicate = Callable[[MessageSet], bool]


@runtime_checkable
class SupportsSaturationScale(Protocol):
    """Analyses that can compute the breakdown scale in closed form."""

    def saturation_scale(self, message_set: MessageSet) -> float:
        """Largest payload scale that keeps ``message_set`` schedulable."""
        ...  # pragma: no cover - protocol definition

    def is_schedulable(self, message_set: MessageSet) -> bool:
        """The ordinary schedulability test."""
        ...  # pragma: no cover - protocol definition


@runtime_checkable
class SupportsBatchScaleProbe(Protocol):
    """Analyses that can evaluate many (set, payload-scale) probes at once.

    ``scale_prober(message_sets)`` prepares per-set state once and returns
    ``probe(indices, scales) -> verdicts``; the lockstep batched bisection
    issues one such call per search step instead of one scalar predicate
    call per set per step.
    """

    def scale_prober(
        self, message_sets: Sequence[MessageSet]
    ) -> Callable[[Sequence[int], np.ndarray], np.ndarray]:
        """Prepare a batched payload-scale predicate over ``message_sets``."""
        ...  # pragma: no cover - protocol definition

    def is_schedulable(self, message_set: MessageSet) -> bool:
        """The ordinary schedulability test."""
        ...  # pragma: no cover - protocol definition


@dataclass(frozen=True)
class BreakdownResult:
    """Outcome of a saturation search.

    Attributes:
        scale: the breakdown scale λ* (``inf`` if the set never saturates —
            only possible for all-zero payloads; ``0.0`` if even
            arbitrarily short messages are unschedulable, e.g. when fixed
            overheads alone exhaust the ring).
        utilization: ``U(λ*·M)`` at the given bandwidth (0 when ``scale``
            is 0 or infinite).
        evaluations: number of predicate evaluations performed.
    """

    scale: float
    utilization: float
    evaluations: int

    @property
    def saturated(self) -> bool:
        """True when a finite positive breakdown point exists."""
        return 0.0 < self.scale < float("inf")


def _bisect_scale(
    message_set: MessageSet,
    predicate: SchedulabilityPredicate,
    rel_tol: float,
    max_doublings: int,
) -> tuple[float, int]:
    """Monotone bisection for the breakdown scale.  Returns (scale, evals)."""
    evaluations = 0

    def schedulable_at(scale: float) -> bool:
        nonlocal evaluations
        evaluations += 1
        return predicate(message_set.scaled(scale))

    # Bracket: find lo schedulable, hi unschedulable.
    if schedulable_at(1.0):
        lo, hi = 1.0, 2.0
        for _ in range(max_doublings):
            if not schedulable_at(hi):
                break
            lo, hi = hi, hi * 2.0
        else:
            return float("inf"), evaluations
    else:
        hi, lo = 1.0, 0.5
        for _ in range(max_doublings):
            if schedulable_at(lo):
                break
            hi, lo = lo, lo / 2.0
        else:
            return 0.0, evaluations

    # Bisect within [lo, hi].
    while hi - lo > rel_tol * hi:
        mid = (lo + hi) / 2.0
        if schedulable_at(mid):
            lo = mid
        else:
            hi = mid
    return lo, evaluations


def _breakdown_cache_keys(
    predicate: object,
    message_sets: "Sequence[MessageSet]",
    rel_tol: float,
    max_doublings: int,
    entry: str,
):
    """``(store, per-set keys)`` when breakdown caching engages, else ``(None, None)``.

    Caching engages only when the predicate can describe itself — a
    ``cache_signature()`` method returning a JSON payload (``None`` opts
    out) — *and* a persistent cache directory is configured.  With no
    disk layer the searches always run: the differential fuzz harness
    compares the scalar and lockstep searches, and a memory-only memo
    would collapse that comparison into a cache lookup of itself.

    ``entry`` ("scale" vs "batch") keeps the two search paths' entries
    apart: their scales are bit-identical but their evaluation counts are
    not (the lockstep search reports speculative probes too).
    """
    describe = getattr(predicate, "cache_signature", None)
    if describe is None:
        return None, None
    from repro import cache as cache_mod  # deferred: analysis stays import-light

    store = cache_mod.result_cache()
    if store.directory is None:
        return None, None
    signature = describe()
    if signature is None:
        return None, None
    keys = [
        cache_mod.content_key(
            {
                "kind": "breakdown",
                "entry": entry,
                "predicate": signature,
                # Columnar sets produce the same [period, payload, station]
                # rows straight from their arrays (native scalars via
                # tolist), so a table and its object twin share entries.
                "streams": (
                    ms.signature_rows()
                    if getattr(ms, "is_columnar", False)
                    else [[s.period_s, s.payload_bits, s.station] for s in ms]
                ),
                "rel_tol": rel_tol,
                "max_doublings": max_doublings,
            }
        )
        for ms in message_sets
    ]
    return store, keys


def breakdown_scale(
    message_set: MessageSet,
    predicate: SchedulabilityPredicate | SupportsSaturationScale,
    rel_tol: float = 1e-4,
    max_doublings: int = 128,
) -> tuple[float, int]:
    """Largest payload scale λ keeping ``message_set`` schedulable.

    ``predicate`` is either a plain callable over message sets or an
    analysis object; analyses exposing ``saturation_scale`` (closed-form
    boundary) are used directly, others fall back to their
    ``is_schedulable`` method under bisection.

    When a persistent result cache is configured (USAGE.md §13) and the
    predicate exposes ``cache_signature()``, the search is memoised under
    a content key; the ``breakdown.*`` metrics then count only the
    searches actually run.

    Returns ``(scale, predicate_evaluations)``.
    """
    if len(message_set) == 0:
        raise MessageSetError("cannot saturate an empty message set")
    if rel_tol <= 0:
        raise MessageSetError(f"relative tolerance must be positive, got {rel_tol!r}")
    store, keys = _breakdown_cache_keys(
        predicate, (message_set,), rel_tol, max_doublings, "scale"
    )
    if store is not None:
        hit = store.get(keys[0], namespace="breakdown")
        if hit is not None:
            return float(hit[0]), int(hit[1])
    scale, evaluations = _breakdown_scale_uncached(
        message_set, predicate, rel_tol, max_doublings
    )
    if store is not None:
        store.put(keys[0], [scale, evaluations], namespace="breakdown")
    return scale, evaluations


def _breakdown_scale_uncached(
    message_set: MessageSet,
    predicate: SchedulabilityPredicate | SupportsSaturationScale,
    rel_tol: float,
    max_doublings: int,
) -> tuple[float, int]:
    if isinstance(predicate, SupportsSaturationScale):
        _metrics.counter("breakdown.closed_form_sets").inc()
        return float(predicate.saturation_scale(message_set)), 1

    test: SchedulabilityPredicate
    if hasattr(predicate, "is_schedulable"):
        test = predicate.is_schedulable
    elif callable(predicate):
        test = predicate
    else:
        raise MessageSetError(
            f"predicate must be callable or an analysis object, got {predicate!r}"
        )

    if message_set.total_payload_bits() == 0:
        # Scaling a zero set does nothing; classify directly.
        _PROBES.inc()
        return (float("inf") if test(message_set) else 0.0), 1

    scale, evaluations = _bisect_scale(message_set, test, rel_tol, max_doublings)
    _SCALAR_SEARCHES.inc()
    _PROBES.inc(evaluations)
    _EVALS_PER_SET.observe(evaluations)
    return scale, evaluations


# -- lockstep batched search --------------------------------------------------

# Phases of the per-set search state machine.  The transitions replicate
# _bisect_scale step for step, so the batched search returns bit-identical
# scales as running breakdown_scale on each set independently.
_INIT, _UP, _DOWN, _BISECT, _ZERO, _DONE = range(6)

#: Speculative doubling probes per bracketing step.  The bracket phase
#: asks for several successive doublings (or halvings) in one batched
#: call and walks the verdicts sequentially, discarding the tail once the
#: bracket closes.  Deep speculation here is cheap relative to the
#: per-call overhead it removes: paper-scale sets rarely need more than
#: a handful of doublings, so most of the chain resolves in one step.
_SPEC_DOUBLINGS = 12

#: Speculative bisection depth: each step probes the full dyadic
#: candidate tree of this many future bisection levels in one batched
#: call (2^levels - 1 scales), then replays the sequential walk over the
#: precomputed verdicts.  The exact-test structure matrix — the dominant
#: memory traffic at paper scale — is read once per *step* instead of
#: once per level.  Five levels (31 candidate scales) resolves a
#: rel_tol=1e-3 bisection in two steps; deeper trees waste FLOPs.
_SPEC_BISECT_LEVELS = 5


def _bisect_candidates(lo: float, hi: float, levels: int) -> list[float]:
    """Every midpoint the next ``levels`` sequential bisection steps could
    visit, in breadth-first order (children of index ``j`` at ``2j+1``,
    ``2j+2``).

    Each point is computed with the identical float expression the scalar
    loop uses — ``(a + b) / 2.0`` on the walked bracket — so replaying
    the walk over these candidates reproduces its iterates bit for bit.
    """
    brackets = [(lo, hi)]
    points: list[float] = []
    for _ in range(levels):
        next_brackets: list[tuple[float, float]] = []
        for a, b in brackets:
            mid = (a + b) / 2.0
            points.append(mid)
            next_brackets.append((a, mid))
            next_brackets.append((mid, b))
        brackets = next_brackets
    return points


def _lockstep_bisect(
    message_sets: Sequence[MessageSet],
    predicate: SupportsBatchScaleProbe,
    rel_tol: float,
    max_doublings: int,
) -> list[tuple[float, int]]:
    """Advance every set's bracket simultaneously, one batched call per step.

    Each step emits a *speculative chunk* of scales per active set — the
    next few doublings while bracketing, the dyadic candidate tree while
    bisecting — so one batched predicate call covers several sequential
    iterations.  The walk over the returned verdicts replays
    ``_bisect_scale`` exactly and discards unused speculation, which keeps
    the scales bit-identical to the scalar search; only the reported
    evaluation counts include the extra speculative probes.
    """
    n = len(message_sets)
    probe = predicate.scale_prober(message_sets)
    phase = [
        _ZERO if ms.total_payload_bits() == 0 else _INIT for ms in message_sets
    ]
    lo = [0.0] * n
    hi = [0.0] * n
    doublings = [0] * n
    evals = [0] * n
    results: list[tuple[float, int]] = [(0.0, 0)] * n

    while True:
        indices: list[int] = []
        scales: list[float] = []
        owners: list[tuple[int, int, int]] = []  # (set, chunk start, length)
        for i in range(n):
            if phase[i] == _DONE:
                continue
            if phase[i] == _BISECT and hi[i] - lo[i] <= rel_tol * hi[i]:
                results[i] = (lo[i], evals[i])
                phase[i] = _DONE
                continue
            if phase[i] in (_INIT, _ZERO):
                chunk = [1.0]
            elif phase[i] == _UP:
                # Successive doublings, exactly the values the scalar loop
                # would compute (repeated * 2.0 is exact in binary).
                chunk, scale = [], hi[i]
                for _ in range(
                    max(1, min(_SPEC_DOUBLINGS, max_doublings - doublings[i]))
                ):
                    chunk.append(scale)
                    scale = scale * 2.0
            elif phase[i] == _DOWN:
                chunk, scale = [], lo[i]
                for _ in range(
                    max(1, min(_SPEC_DOUBLINGS, max_doublings - doublings[i]))
                ):
                    chunk.append(scale)
                    scale = scale / 2.0
            else:
                chunk = _bisect_candidates(lo[i], hi[i], _SPEC_BISECT_LEVELS)
            owners.append((i, len(scales), len(chunk)))
            indices.extend([i] * len(chunk))
            scales.extend(chunk)
        if not owners:
            _SETS_SATURATED.inc(n)
            for _, n_evals in results:
                _EVALS_PER_SET.observe(n_evals)
            return results

        _BATCH_CALLS.inc()
        _PROBES.inc(len(scales))
        verdicts = probe(indices, np.asarray(scales))
        for i, start, length in owners:
            chunk = scales[start : start + length]
            vchunk = verdicts[start : start + length]
            evals[i] += length
            if phase[i] == _ZERO:
                results[i] = (float("inf") if vchunk[0] else 0.0, evals[i])
                phase[i] = _DONE
            elif phase[i] == _INIT:
                if vchunk[0]:
                    lo[i], hi[i], phase[i] = 1.0, 2.0, _UP
                else:
                    hi[i], lo[i], phase[i] = 1.0, 0.5, _DOWN
                if max_doublings == 0:
                    results[i] = (
                        float("inf") if vchunk[0] else 0.0,
                        evals[i],
                    )
                    phase[i] = _DONE
            elif phase[i] == _UP:
                for ok in vchunk:
                    if not ok:
                        phase[i] = _BISECT
                        break
                    lo[i], hi[i] = hi[i], hi[i] * 2.0
                    doublings[i] += 1
                    if doublings[i] == max_doublings:
                        results[i] = (float("inf"), evals[i])
                        phase[i] = _DONE
                        break
            elif phase[i] == _DOWN:
                for ok in vchunk:
                    if ok:
                        phase[i] = _BISECT
                        break
                    hi[i], lo[i] = lo[i], lo[i] / 2.0
                    doublings[i] += 1
                    if doublings[i] == max_doublings:
                        results[i] = (0.0, evals[i])
                        phase[i] = _DONE
                        break
            else:  # _BISECT: walk the candidate tree along the verdicts
                idx = 0
                while idx < length:
                    ok = bool(vchunk[idx])
                    if ok:
                        lo[i] = chunk[idx]
                    else:
                        hi[i] = chunk[idx]
                    if hi[i] - lo[i] <= rel_tol * hi[i]:
                        results[i] = (lo[i], evals[i])
                        phase[i] = _DONE
                        break
                    idx = 2 * idx + 1 + (1 if ok else 0)


def breakdown_scales_batch(
    message_sets: Sequence[MessageSet],
    predicate: SchedulabilityPredicate | SupportsSaturationScale | SupportsBatchScaleProbe,
    rel_tol: float = 1e-4,
    max_doublings: int = 128,
) -> list[tuple[float, int]]:
    """Breakdown scales of many message sets with batched evaluations.

    Returns the **bit-identical scales** of ``[breakdown_scale(ms,
    predicate, ...) for ms in message_sets]``, but executed in *lockstep*:
    every step advances the bracket of every still-active set with a
    single batched predicate call, and each set's chunk probes several
    future iterations speculatively (one structure-matrix read covers a
    whole dyadic subtree of bisection candidates).  The reported per-set
    evaluation counts therefore *exceed* the scalar search's — they count
    physical probes, including discarded speculation.

    Dispatch, in order of preference:

    * closed-form analyses (:class:`SupportsSaturationScale`, e.g. the
      TTP) — one exact evaluation per set, nothing to batch;
    * batch-probing analyses (:class:`SupportsBatchScaleProbe`, e.g.
      :class:`~repro.analysis.pdp.PDPAnalysis`) — the lockstep search;
    * anything else — per-set :func:`breakdown_scale` fallback.

    With a persistent result cache configured (USAGE.md §13), hits are
    served per set and only the missing sets are searched; every set's
    lockstep result — scale *and* evaluation count — is independent of
    which other sets share the batch (each set's bracket advances on its
    own chunks), so subsetting cannot change any returned pair.
    """
    if rel_tol <= 0:
        raise MessageSetError(f"relative tolerance must be positive, got {rel_tol!r}")
    for message_set in message_sets:
        if len(message_set) == 0:
            raise MessageSetError("cannot saturate an empty message set")
    if not message_sets:
        return []
    store, keys = _breakdown_cache_keys(
        predicate, message_sets, rel_tol, max_doublings, "batch"
    )
    if store is None:
        return _breakdown_scales_batch_uncached(
            message_sets, predicate, rel_tol, max_doublings
        )
    results: "list[tuple[float, int] | None]" = [None] * len(message_sets)
    missing: list[int] = []
    for index, key in enumerate(keys):
        hit = store.get(key, namespace="breakdown")
        if hit is not None:
            results[index] = (float(hit[0]), int(hit[1]))
        else:
            missing.append(index)
    if missing:
        computed = _breakdown_scales_batch_uncached(
            [message_sets[i] for i in missing], predicate, rel_tol, max_doublings
        )
        for index, (scale, evaluations) in zip(missing, computed):
            results[index] = (scale, evaluations)
            store.put(keys[index], [scale, evaluations], namespace="breakdown")
    return results  # type: ignore[return-value]


def _breakdown_scales_batch_uncached(
    message_sets: Sequence[MessageSet],
    predicate: SchedulabilityPredicate | SupportsSaturationScale | SupportsBatchScaleProbe,
    rel_tol: float,
    max_doublings: int,
) -> list[tuple[float, int]]:
    if isinstance(predicate, SupportsSaturationScale):
        _metrics.counter("breakdown.closed_form_sets").inc(len(message_sets))
        return [(float(predicate.saturation_scale(ms)), 1) for ms in message_sets]
    if isinstance(predicate, SupportsBatchScaleProbe):
        return _lockstep_bisect(message_sets, predicate, rel_tol, max_doublings)
    return [
        breakdown_scale(ms, predicate, rel_tol, max_doublings)
        for ms in message_sets
    ]


def breakdown_utilization(
    message_set: MessageSet,
    predicate: SchedulabilityPredicate | SupportsSaturationScale,
    bandwidth_bps: float,
    rel_tol: float = 1e-4,
) -> BreakdownResult:
    """Breakdown utilization of ``message_set`` under ``predicate``.

    The utilization of the saturated set ``λ*·M`` at ``bandwidth_bps``;
    this is the quantity averaged by the Monte Carlo study of Section 6.
    """
    scale, evaluations = breakdown_scale(message_set, predicate, rel_tol)
    return _result_from_scale(message_set, scale, evaluations, bandwidth_bps)


def _result_from_scale(
    message_set: MessageSet, scale: float, evaluations: int, bandwidth_bps: float
) -> BreakdownResult:
    if scale <= 0.0 or scale == float("inf"):
        return BreakdownResult(scale=scale, utilization=0.0, evaluations=evaluations)
    utilization = message_set.scaled(scale).utilization(bandwidth_bps)
    return BreakdownResult(scale=scale, utilization=utilization, evaluations=evaluations)


def breakdown_utilizations_batch(
    message_sets: Sequence[MessageSet],
    predicate: SchedulabilityPredicate | SupportsSaturationScale | SupportsBatchScaleProbe,
    bandwidth_bps: float,
    rel_tol: float = 1e-4,
) -> list[BreakdownResult]:
    """Batched counterpart of :func:`breakdown_utilization`.

    Runs :func:`breakdown_scales_batch` over the whole population, then
    evaluates the saturated utilizations exactly as the scalar path does
    (one scaled-set construction per set, not per probe).
    """
    pairs = breakdown_scales_batch(message_sets, predicate, rel_tol)
    return [
        _result_from_scale(ms, scale, evaluations, bandwidth_bps)
        for ms, (scale, evaluations) in zip(message_sets, pairs)
    ]
