"""Schedulability analyses — the paper's primary contribution.

* :mod:`~repro.analysis.rm` — rate-monotonic scheduling theory substrate:
  the Liu–Layland bound, the Lehoczky–Sha–Ding exact test (the machinery
  Theorem 4.1 extends), and iterative response-time analysis used for
  cross-validation.
* :mod:`~repro.analysis.pdp` — Theorem 4.1: schedulability of the priority
  driven protocol (standard and modified IEEE 802.5).
* :mod:`~repro.analysis.ttp` — Theorem 5.1: schedulability of the timed
  token protocol with the local synchronous bandwidth allocation scheme.
* :mod:`~repro.analysis.ttrt` — TTRT selection (sqrt heuristic, half-min
  rule, numeric optimum).
* :mod:`~repro.analysis.sba` — the wider family of synchronous bandwidth
  allocation schemes used as baselines.
* :mod:`~repro.analysis.breakdown` — saturation scaling: drive a message
  set to the boundary of schedulability.
* :mod:`~repro.analysis.montecarlo` — average breakdown utilization
  estimation.
"""

from repro.analysis.asymptotics import (
    CeilingCurves,
    ceiling_curves,
    pdp_utilization_ceiling,
    ttp_utilization_ceiling,
)
from repro.analysis.bounds import (
    GuaranteeReport,
    pdp_sufficient_test,
    ttp_guaranteed_utilization,
    ttp_sufficient_test,
)
from repro.analysis.breakdown import (
    BreakdownResult,
    breakdown_scale,
    breakdown_utilization,
)
from repro.analysis.montecarlo import (
    AverageBreakdownEstimate,
    average_breakdown_utilization,
)
from repro.analysis.pdp import PDPAnalysis, PDPVariant, pdp_augmented_length
from repro.analysis.rm import (
    ExactRMTest,
    hyperbolic_bound_holds,
    liu_layland_bound,
    response_time_analysis,
)
from repro.analysis.ttp import TTPAnalysis, ttp_overhead_delta
from repro.analysis.ttrt import (
    TTRTPolicy,
    half_min_period_ttrt,
    optimal_ttrt,
    sqrt_rule_ttrt,
)
from repro.analysis.worstcase import (
    WorstCaseResult,
    pdp_minimum_breakdown,
    ttp_minimum_breakdown,
)

__all__ = [
    "CeilingCurves",
    "ceiling_curves",
    "pdp_utilization_ceiling",
    "ttp_utilization_ceiling",
    "GuaranteeReport",
    "pdp_sufficient_test",
    "ttp_guaranteed_utilization",
    "ttp_sufficient_test",
    "WorstCaseResult",
    "pdp_minimum_breakdown",
    "ttp_minimum_breakdown",
    "ExactRMTest",
    "liu_layland_bound",
    "hyperbolic_bound_holds",
    "response_time_analysis",
    "PDPAnalysis",
    "PDPVariant",
    "pdp_augmented_length",
    "TTPAnalysis",
    "ttp_overhead_delta",
    "TTRTPolicy",
    "sqrt_rule_ttrt",
    "half_min_period_ttrt",
    "optimal_ttrt",
    "BreakdownResult",
    "breakdown_scale",
    "breakdown_utilization",
    "AverageBreakdownEstimate",
    "average_breakdown_utilization",
]
