"""Minimum breakdown utilization — the worst-case companion metric.

Section 2 of the paper contrasts two utilization metrics: the **average**
breakdown utilization (its chosen design-stage metric, Section 6) and the
**minimum** breakdown utilization — the threshold below which *every*
message set is guaranteed, which is what a network administrator wants for
test-free admission at run time.

This module estimates the minimum by *adversarial search*: find the
message set whose breakdown utilization is smallest.

For the timed token protocol the inner optimization is solvable exactly:
the breakdown utilization of a set is

    ``U*(M) = budget · (Σ C_i/P_i) / (Σ C_i/(q_i - 1))``

which is linear-fractional in the payload vector, so its minimum over
payload distributions sits at a vertex — all payload on the stream
maximizing ``P_i / (q_i - 1)``.  Only the period vector needs searching
(:func:`ttp_minimum_breakdown`), and for the sqrt-rule policy the
adversary's optimum is a period just below ``3·TTRT`` (``q = 2``), which
recovers the literature's 33% characterization as overheads vanish.

For the priority driven protocol no closed form exists;
:func:`pdp_minimum_breakdown` runs a random-restart local search over
periods and payload weights with the bisection breakdown as the inner
objective.  The result upper-bounds the true minimum (any found set is a
witness); property tests check it never undercuts values that theory
forbids.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.breakdown import breakdown_utilization
from repro.analysis.pdp import PDPAnalysis
from repro.analysis.ttp import TTPAnalysis
from repro.errors import ConfigurationError
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream

__all__ = [
    "WorstCaseResult",
    "ttp_breakdown_of_set",
    "ttp_minimum_breakdown",
    "pdp_minimum_breakdown",
]


@dataclass(frozen=True)
class WorstCaseResult:
    """A witness for (an upper bound on) the minimum breakdown utilization.

    Attributes:
        utilization: the witness set's breakdown utilization.
        message_set: the adversarial message set found.
        evaluations: number of breakdown evaluations spent searching.
    """

    utilization: float
    message_set: MessageSet
    evaluations: int


def _periods_to_set(
    periods: Sequence[float], weights: Sequence[float]
) -> MessageSet:
    return MessageSet(
        SynchronousStream(period_s=float(p), payload_bits=float(w), station=i)
        for i, (p, w) in enumerate(zip(periods, weights))
    )


def ttp_breakdown_of_set(
    analysis: TTPAnalysis, message_set: MessageSet
) -> float:
    """Breakdown utilization of one set under Theorem 5.1 (closed form)."""
    scale = analysis.saturation_scale(message_set)
    if scale <= 0.0 or scale == float("inf"):
        return 0.0
    return message_set.scaled(scale).utilization(analysis.ring.bandwidth_bps)


def ttp_minimum_breakdown(
    analysis: TTPAnalysis,
    period_bounds: tuple[float, float],
    n_streams: int,
    grid_points: int = 400,
) -> WorstCaseResult:
    """Minimum breakdown utilization of the TTP over a period domain.

    Uses the vertex property: the adversary concentrates all payload on
    one stream, so it suffices to scan candidate period vectors where one
    "victim" stream takes each candidate period and the remaining
    ``n_streams - 1`` stations carry (payload-free) streams that still pay
    their ``F_ovhd`` share and pin ``P_min`` (and hence the TTRT policy).
    Both the victim's period and the pin period are scanned.
    """
    low, high = period_bounds
    if not 0 < low <= high:
        raise ConfigurationError(f"bad period bounds: {period_bounds!r}")
    if n_streams < 1:
        raise ConfigurationError(f"need at least one stream, got {n_streams!r}")

    candidates = np.geomspace(low, high, grid_points)
    best: WorstCaseResult | None = None
    evaluations = 0

    for pin in (low, high):
        for victim_period in candidates:
            periods = [victim_period] + [pin] * (n_streams - 1)
            weights = [1000.0] + [0.0] * (n_streams - 1)
            message_set = _periods_to_set(periods, weights)
            utilization = ttp_breakdown_of_set(analysis, message_set)
            evaluations += 1
            if best is None or utilization < best.utilization:
                best = WorstCaseResult(utilization, message_set, evaluations)

    assert best is not None
    return WorstCaseResult(best.utilization, best.message_set, evaluations)


def pdp_minimum_breakdown(
    analysis: PDPAnalysis,
    period_bounds: tuple[float, float],
    n_streams: int,
    restarts: int = 8,
    iterations: int = 40,
    rng: np.random.Generator | int | None = None,
    rel_tol: float = 1e-3,
) -> WorstCaseResult:
    """Adversarial search for the PDP's minimum breakdown utilization.

    Random-restart coordinate perturbation: start from random period and
    weight vectors, greedily accept perturbations that lower the breakdown
    utilization.  Returns the best witness found (an upper bound on the
    true minimum).
    """
    low, high = period_bounds
    if not 0 < low <= high:
        raise ConfigurationError(f"bad period bounds: {period_bounds!r}")
    if n_streams < 1:
        raise ConfigurationError(f"need at least one stream, got {n_streams!r}")
    generator = (
        rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    )
    bandwidth = analysis.ring.bandwidth_bps
    evaluations = 0

    def objective(periods: np.ndarray, weights: np.ndarray) -> float:
        nonlocal evaluations
        message_set = _periods_to_set(periods, weights)
        evaluations += 1
        result = breakdown_utilization(message_set, analysis, bandwidth, rel_tol)
        # A zero-breakdown witness is already minimal; infinite scales
        # (all-zero weights) are invalid adversaries.
        if result.scale == float("inf"):
            return float("inf")
        return result.utilization

    best_value = float("inf")
    best_periods = None
    best_weights = None

    for _ in range(restarts):
        periods = np.sort(generator.uniform(low, high, size=n_streams))
        weights = generator.uniform(0.1, 1.0, size=n_streams) * 1000.0
        value = objective(periods, weights)
        for _ in range(iterations):
            index = int(generator.integers(n_streams))
            trial_periods = periods.copy()
            trial_weights = weights.copy()
            if generator.random() < 0.5:
                factor = math.exp(generator.normal(0.0, 0.3))
                trial_periods[index] = float(
                    np.clip(trial_periods[index] * factor, low, high)
                )
                trial_periods.sort()
            else:
                factor = math.exp(generator.normal(0.0, 0.7))
                trial_weights[index] = max(trial_weights[index] * factor, 1e-3)
            trial_value = objective(trial_periods, trial_weights)
            if trial_value < value:
                periods, weights, value = trial_periods, trial_weights, trial_value
        if value < best_value:
            best_value, best_periods, best_weights = value, periods, weights

    witness = _periods_to_set(best_periods, best_weights)
    return WorstCaseResult(best_value, witness, evaluations)
