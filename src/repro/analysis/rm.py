"""Rate-monotonic scheduling theory (the substrate of Theorem 4.1).

The paper's PDP analysis is the Lehoczky–Sha–Ding (LSD) exact
characterization of rate-monotonic schedulability, extended with protocol
overheads (augmented message lengths ``C'_i``) and a blocking term ``B``.
This module implements the underlying theory in task-level terms:

* :func:`liu_layland_bound` — the classic sufficient utilization bound
  ``n (2^{1/n} - 1)`` of Liu & Layland.
* :func:`hyperbolic_bound_holds` — Bini's hyperbolic sufficient test, a
  tighter polynomial-time check used to seed saturation searches.
* :class:`ExactRMTest` — the LSD exact test over the scheduling points
  ``R_i = { l·P_k : k <= i, 1 <= l <= floor(P_i/P_k) }`` with an additive
  blocking term, exactly the form of the paper's equation (4).  The test
  structure (scheduling points and the ``ceil(t/P_j)`` interference
  matrices) depends only on the periods, so it is precomputed once and then
  evaluated for many cost vectors — the breakdown search and the bandwidth
  sweep both exploit this heavily.
* :func:`response_time_analysis` — the equivalent iterative fixed-point
  test, kept as an independent oracle for property tests.

Throughout, tasks/streams are indexed in rate-monotonic priority order:
index 0 has the shortest period (highest priority).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import MessageSetError

__all__ = [
    "liu_layland_bound",
    "hyperbolic_bound_holds",
    "ExactRMTest",
    "GroupedExactRMTest",
    "StreamTestDetail",
    "response_time_analysis",
]


def liu_layland_bound(n: int) -> float:
    """The Liu–Layland sufficient utilization bound ``n (2^{1/n} - 1)``.

    Any set of ``n`` independent periodic tasks with total utilization at
    or below this bound is RM-schedulable.  Tends to ``ln 2 ≈ 0.693`` as
    ``n`` grows.
    """
    if n < 1:
        raise MessageSetError(f"need at least one task, got {n!r}")
    return n * (2.0 ** (1.0 / n) - 1.0)


def hyperbolic_bound_holds(utilizations: Sequence[float]) -> bool:
    """Bini's hyperbolic sufficient test: ``prod (U_i + 1) <= 2``.

    Strictly dominates the Liu–Layland bound (never rejects a set the LL
    bound accepts).  Used as a cheap pre-filter.
    """
    product = 1.0
    for u in utilizations:
        if u < 0:
            raise MessageSetError(f"utilization must be non-negative, got {u!r}")
        product *= u + 1.0
    return product <= 2.0


@dataclass(frozen=True)
class StreamTestDetail:
    """Per-stream outcome of the exact test.

    Attributes:
        index: stream position in RM priority order.
        schedulable: whether this stream meets its deadline.
        min_load_ratio: the minimized left-hand side of equation (4) —
            strictly below 1 means unsaturated, exactly 1 saturated,
            above 1 unschedulable.
        critical_point: the scheduling point ``t`` achieving the minimum.
    """

    index: int
    schedulable: bool
    min_load_ratio: float
    critical_point: float


class ExactRMTest:
    """The Lehoczky–Sha–Ding exact test with precomputed structure.

    Construction cost is ``O(sum_i |R_i| * n)`` time and memory (the
    scheduling points of all streams are stacked into one flat demand
    matrix); evaluating one cost vector is a single matrix–vector product
    plus a per-stream OR-reduction, and a whole batch of cost vectors
    (:meth:`is_schedulable_batch`) is a single matrix–matrix product.

    Args:
        periods: task periods in *non-decreasing* order (RM priority
            order).  A non-monotone sequence is rejected: silently sorting
            would desynchronize the caller's cost vector.
    """

    def __init__(self, periods: Sequence[float]):
        periods_arr = np.asarray(periods, dtype=float)
        if periods_arr.ndim != 1 or periods_arr.size == 0:
            raise MessageSetError("periods must be a non-empty 1-D sequence")
        if np.any(periods_arr <= 0):
            raise MessageSetError("periods must be positive")
        if np.any(np.diff(periods_arr) < 0):
            raise MessageSetError(
                "periods must be in non-decreasing (rate-monotonic) order"
            )
        self._periods = periods_arr
        self._build_structure()

    # -- structure ---------------------------------------------------------------

    def _build_structure(self) -> None:
        """Precompute scheduling points and the stacked demand matrix.

        For stream ``i`` the scheduling points are all multiples ``l·P_k``
        with ``k <= i`` and ``l·P_k <= P_i`` — the times at which a
        higher-priority busy period can end.  All streams' points are
        stacked into one flat demand matrix with a row per point ``t``
        holding ``ceil(t / P_j)`` for every higher-priority stream ``j``
        and an exact 1 in column ``i`` (the stream's own cost), so that
        *one* matrix–vector product evaluates every stream's equation (4)
        demand simultaneously, and a batch of cost vectors is one
        matrix–matrix product.  ``_segment_starts`` records where each
        stream's rows begin (for the per-stream OR-reduction and the
        per-stream report slices).
        """
        periods = self._periods
        n = periods.size
        # Streams sharing a period share everything: the same scheduling
        # points and the same ceil(t/P) interference coefficients.  All
        # per-point work therefore runs once per *distinct* period and is
        # expanded to per-stream columns afterwards — an admission
        # service draws periods from a small catalogue, so this turns the
        # O(n^2) small-array loop (the dominant tail term of served
        # decisions) into an O(m^2) one with m = distinct periods.
        distinct, inverse = np.unique(periods, return_inverse=True)
        group_counts = np.bincount(inverse, minlength=distinct.size)
        offsets = np.concatenate(([0], np.cumsum(group_counts)))
        group_points: list[np.ndarray] = []
        group_coef: list[np.ndarray] = []
        for t, d_t in enumerate(distinct):
            multiples = [
                d_u * np.arange(1, int(np.floor(d_t / d_u + 1e-12)) + 1)
                for d_u in distinct[: t + 1]
            ]
            pts = np.unique(np.concatenate(multiples))
            group_points.append(pts)
            # ceil with a tolerance: t is an exact multiple of some P_k,
            # and floating-point noise must not push ceil(t/P_j) up a
            # step when t/P_j is integral.
            group_coef.append(
                np.ceil(pts[:, None] / distinct[None, : t + 1] - 1e-9)
            )
        segments = [group_points[t] for t in inverse]
        counts = np.array([s.size for s in segments], dtype=np.intp)
        starts = np.zeros(n, dtype=np.intp)
        np.cumsum(counts[:-1], out=starts[1:])
        flat_points = np.concatenate(segments)
        matrix = np.zeros((flat_points.size, n))
        for t in range(distinct.size):
            pts = group_points[t]
            coef = group_coef[t]
            # One column per higher-priority stream: the group's
            # coefficient columns repeated by group size.  Within the
            # group, rate-monotonic order adds one same-period column
            # per position (the triangular cutoff), then the exact 1 in
            # the stream's own column.
            before = np.repeat(coef[:, :t], group_counts[:t], axis=1)
            own = coef[:, t]
            for g in range(group_counts[t]):
                i = offsets[t] + g
                rows = slice(starts[i], starts[i] + pts.size)
                if t > 0:
                    matrix[rows, : offsets[t]] = before
                if g > 0:
                    matrix[rows, offsets[t]: i] = own[:, None]
                matrix[rows, i] = 1.0
        self._segment_starts = starts
        self._flat_points = flat_points
        self._flat_thresholds = flat_points * (1.0 + 1e-12)
        self._matrix = matrix

    def _segment(self, index: int) -> slice:
        """Row range of stream ``index`` in the stacked structure."""
        start = self._segment_starts[index]
        end = (
            self._segment_starts[index + 1]
            if index + 1 < self._periods.size
            else self._flat_points.size
        )
        return slice(start, end)

    @property
    def periods(self) -> np.ndarray:
        """The period vector (read-only view)."""
        view = self._periods.view()
        view.flags.writeable = False
        return view

    @property
    def n_streams(self) -> int:
        """Number of streams the test was built for."""
        return self._periods.size

    def scheduling_points(self, index: int) -> np.ndarray:
        """The scheduling points ``R_i`` for stream ``index`` (a copy)."""
        return self._flat_points[self._segment(index)].copy()

    # -- evaluation --------------------------------------------------------------

    def _validate_costs(self, costs: Sequence[float]) -> np.ndarray:
        arr = np.asarray(costs, dtype=float)
        if arr.shape != self._periods.shape:
            raise MessageSetError(
                f"expected {self._periods.size} costs, got shape {arr.shape}"
            )
        if np.any(arr < 0):
            raise MessageSetError("costs must be non-negative")
        return arr

    def _stream_load_ratio(
        self, index: int, arr: np.ndarray, blocking: float
    ) -> tuple[float, float]:
        """:meth:`stream_load_ratio` on an already-validated cost array."""
        rows = self._segment(index)
        points = self._flat_points[rows]
        interference = self._matrix[rows, :index]
        demand = interference @ arr[:index] + arr[index] + blocking
        ratios = demand / points
        best = int(np.argmin(ratios))
        return float(ratios[best]), float(points[best])

    def stream_load_ratio(
        self, index: int, costs: Sequence[float], blocking: float = 0.0
    ) -> tuple[float, float]:
        """Minimized LHS of equation (4) for one stream.

        Returns ``(min_ratio, critical_point)``; the stream is schedulable
        iff ``min_ratio <= 1``.
        """
        return self._stream_load_ratio(index, self._validate_costs(costs), blocking)

    def _evaluate(self, arr: np.ndarray, blocking: float) -> bool:
        """:meth:`is_schedulable` on an already-validated cost array."""
        demand = self._matrix @ arr + blocking
        ok = demand <= self._flat_thresholds
        return bool(np.logical_or.reduceat(ok, self._segment_starts).all())

    def is_schedulable(
        self, costs: Sequence[float], blocking: float = 0.0
    ) -> bool:
        """True iff every stream passes the exact test.

        One matrix–vector product over the stacked structure evaluates
        every stream's demand at every scheduling point simultaneously; a
        per-stream OR-reduction then checks that each stream has at least
        one point where the demand fits.
        """
        arr = self._validate_costs(costs)
        if blocking < 0:
            raise MessageSetError(f"blocking must be non-negative, got {blocking!r}")
        return self._evaluate(arr, blocking)

    def is_schedulable_batch(
        self, costs_matrix: Sequence[Sequence[float]], blocking: float = 0.0
    ) -> np.ndarray:
        """Evaluate many cost vectors against the shared structure at once.

        ``costs_matrix`` has one row per candidate cost vector (shape
        ``(batch, n_streams)``); the return value is a boolean array with
        one verdict per row.  Validation runs once for the whole batch and
        the entire evaluation is a single stacked matrix product plus one
        OR-reduction, so a batch of ``B`` evaluations costs far less than
        ``B`` calls to :meth:`is_schedulable`.
        """
        mat = np.asarray(costs_matrix, dtype=float)
        if mat.ndim != 2 or mat.shape[1] != self._periods.size:
            raise MessageSetError(
                f"expected a (batch, {self._periods.size}) cost matrix, "
                f"got shape {mat.shape}"
            )
        if np.any(mat < 0):
            raise MessageSetError("costs must be non-negative")
        if blocking < 0:
            raise MessageSetError(f"blocking must be non-negative, got {blocking!r}")
        demand = mat @ self._matrix.T + blocking
        ok = demand <= self._flat_thresholds
        return np.logical_or.reduceat(ok, self._segment_starts, axis=1).all(axis=1)

    def details(
        self, costs: Sequence[float], blocking: float = 0.0
    ) -> list[StreamTestDetail]:
        """Full per-stream report (no early exit).

        Costs are validated once up front; the per-stream minimization runs
        on the validated array directly (re-validating per stream would
        make the report O(n²) in the stream count).
        """
        arr = self._validate_costs(costs)
        report = []
        for i in range(arr.size):
            ratio, point = self._stream_load_ratio(i, arr, blocking)
            report.append(
                StreamTestDetail(
                    index=i,
                    schedulable=ratio <= 1.0 + 1e-12,
                    min_load_ratio=ratio,
                    critical_point=point,
                )
            )
        return report


class GroupedExactRMTest:
    """The LSD exact test aggregated over *distinct* periods.

    :class:`ExactRMTest` stacks one demand-matrix segment per stream, so
    its memory is ``O(sum_i |R_i| * n)`` — terabytes for 10^6 streams even
    with a small period catalogue.  This variant exploits the structure of
    equation (4) under shared periods: every member of a period group sees
    the same scheduling points and the same ``ceil(t/P)`` coefficients,
    and within a group the *last* member in RM order is binding (its
    demand is the group base plus the full group cost sum; every earlier
    member's demand is the base plus a prefix of that sum, which is never
    larger).  The whole set is therefore schedulable iff for every
    distinct period ``d_g`` there is a scheduling point ``t <= d_g`` with

        ``sum_{u <= g} ceil(t / d_u) * S_u + B <= t``

    where ``S_u`` is the summed cost of group ``u``.  The matrix has one
    column per *distinct period* (``m`` columns, not ``n``), making the
    structure independent of stream count: evaluation is an ``O(n)``
    group-sum (one ``bincount``) plus an ``O(points x m)`` product.

    The verdict is identical to :class:`ExactRMTest` for every cost
    vector (pinned by tests and the ``columnar_equiv`` fuzz property);
    intermediate demands may differ in the last bits because group costs
    are summed before the matrix product rather than inside it.

    Unlike :class:`ExactRMTest`, construction accepts periods in *any*
    order — RM priority is derived from the period values, and cost
    vectors are aggregated positionally against the constructor order.
    """

    def __init__(self, periods: Sequence[float]):
        periods_arr = np.asarray(periods, dtype=float)
        if periods_arr.ndim != 1 or periods_arr.size == 0:
            raise MessageSetError("periods must be a non-empty 1-D sequence")
        if np.any(periods_arr <= 0):
            raise MessageSetError("periods must be positive")
        self._periods = periods_arr
        self._distinct, self._inverse = np.unique(
            periods_arr, return_inverse=True
        )
        self._build_structure()

    def _build_structure(self) -> None:
        """Precompute per-group scheduling points and the m-column matrix."""
        distinct = self._distinct
        m = distinct.size
        group_points: list[np.ndarray] = []
        group_coef: list[np.ndarray] = []
        for g, d_g in enumerate(distinct):
            multiples = [
                d_u * np.arange(1, int(np.floor(d_g / d_u + 1e-12)) + 1)
                for d_u in distinct[: g + 1]
            ]
            pts = np.unique(np.concatenate(multiples))
            group_points.append(pts)
            # Same ceil tolerance as ExactRMTest: exact multiples must not
            # round up a step.  The own-group column (u == g) comes out as
            # exactly 1.0 for every point t <= d_g, which is precisely the
            # binding member's own-cost coefficient in the dense test.
            group_coef.append(
                np.ceil(pts[:, None] / distinct[None, : g + 1] - 1e-9)
            )
        counts = np.array([p.size for p in group_points], dtype=np.intp)
        starts = np.zeros(m, dtype=np.intp)
        np.cumsum(counts[:-1], out=starts[1:])
        flat_points = np.concatenate(group_points)
        matrix = np.zeros((flat_points.size, m))
        for g in range(m):
            rows = slice(starts[g], starts[g] + counts[g])
            matrix[rows, : g + 1] = group_coef[g]
        self._segment_starts = starts
        self._flat_points = flat_points
        self._flat_thresholds = flat_points * (1.0 + 1e-12)
        self._matrix = matrix

    @property
    def periods(self) -> np.ndarray:
        """The period vector in constructor order (read-only view)."""
        view = self._periods.view()
        view.flags.writeable = False
        return view

    @property
    def n_streams(self) -> int:
        """Number of streams the test was built for."""
        return self._periods.size

    @property
    def n_groups(self) -> int:
        """Number of distinct periods (matrix columns)."""
        return self._distinct.size

    # -- evaluation --------------------------------------------------------------

    def _validate_costs(self, costs: Sequence[float]) -> np.ndarray:
        arr = np.asarray(costs, dtype=float)
        if arr.shape != self._periods.shape:
            raise MessageSetError(
                f"expected {self._periods.size} costs, got shape {arr.shape}"
            )
        if np.any(arr < 0):
            raise MessageSetError("costs must be non-negative")
        return arr

    def _group_sums(self, arr: np.ndarray) -> np.ndarray:
        """Per-distinct-period cost sums ``S_u`` (one bincount pass)."""
        return np.bincount(
            self._inverse, weights=arr, minlength=self._distinct.size
        )

    def _evaluate_sums(self, sums: np.ndarray, blocking: float) -> bool:
        demand = self._matrix @ sums + blocking
        ok = demand <= self._flat_thresholds
        return bool(np.logical_or.reduceat(ok, self._segment_starts).all())

    def _evaluate(self, arr: np.ndarray, blocking: float) -> bool:
        """:meth:`is_schedulable` on an already-validated cost array
        (the duck-typed fast path :meth:`PDPAnalysis.scale_prober` uses)."""
        return self._evaluate_sums(self._group_sums(arr), blocking)

    def is_schedulable(
        self, costs: Sequence[float], blocking: float = 0.0
    ) -> bool:
        """True iff every stream passes the exact test (binding-member
        check per distinct-period group; see the class docstring)."""
        arr = self._validate_costs(costs)
        if blocking < 0:
            raise MessageSetError(f"blocking must be non-negative, got {blocking!r}")
        return self._evaluate_sums(self._group_sums(arr), blocking)

    def is_schedulable_batch(
        self, costs_matrix: Sequence[Sequence[float]], blocking: float = 0.0
    ) -> np.ndarray:
        """One verdict per row of a ``(batch, n_streams)`` cost matrix."""
        mat = np.asarray(costs_matrix, dtype=float)
        if mat.ndim != 2 or mat.shape[1] != self._periods.size:
            raise MessageSetError(
                f"expected a (batch, {self._periods.size}) cost matrix, "
                f"got shape {mat.shape}"
            )
        if np.any(mat < 0):
            raise MessageSetError("costs must be non-negative")
        if blocking < 0:
            raise MessageSetError(f"blocking must be non-negative, got {blocking!r}")
        order = np.argsort(self._inverse, kind="stable")
        group_starts = np.searchsorted(
            self._inverse[order], np.arange(self._distinct.size)
        )
        sums = np.add.reduceat(mat[:, order], group_starts, axis=1)
        demand = sums @ self._matrix.T + blocking
        ok = demand <= self._flat_thresholds
        return np.logical_or.reduceat(ok, self._segment_starts, axis=1).all(axis=1)

    def is_schedulable_scaled(
        self,
        base_costs: Sequence[float],
        scales: Sequence[float],
        blocking: float = 0.0,
    ) -> np.ndarray:
        """Verdicts for ``scale * base_costs`` across many scales at once.

        Avoids materializing the ``(batch, n_streams)`` cost matrix the
        generic batch API would need — the group sums of the base costs
        are computed once and the scale factors applied to the ``m``-wide
        sums instead, so a whole scale sweep over a million-stream set
        costs one bincount plus one small matrix product.
        """
        arr = self._validate_costs(base_costs)
        scale_arr = np.asarray(scales, dtype=float)
        if scale_arr.ndim != 1:
            raise MessageSetError("scales must be a 1-D sequence")
        if np.any(scale_arr < 0):
            raise MessageSetError("scales must be non-negative")
        if blocking < 0:
            raise MessageSetError(f"blocking must be non-negative, got {blocking!r}")
        sums = self._group_sums(arr)
        demand = scale_arr[:, None] * (self._matrix @ sums)[None, :] + blocking
        ok = demand <= self._flat_thresholds
        return np.logical_or.reduceat(ok, self._segment_starts, axis=1).all(axis=1)


def response_time_analysis(
    costs: Sequence[float],
    periods: Sequence[float],
    blocking: float = 0.0,
    max_iterations: int = 10_000,
) -> list[float]:
    """Iterative response-time analysis (Joseph & Pandya / Audsley).

    Computes, for each stream in RM order, the fixed point of

        ``R = C_i + B + sum_{j<i} ceil(R / P_j) * C_j``.

    The stream is schedulable iff its response time is at most its period.
    The iteration is cut off once ``R`` exceeds the period (the exact value
    past the deadline is irrelevant) and the period+cost upper bound is
    returned in that case, capped for reporting.

    This is mathematically equivalent to the LSD test and serves as an
    independent oracle in property tests.
    """
    costs_arr = np.asarray(costs, dtype=float)
    periods_arr = np.asarray(periods, dtype=float)
    if costs_arr.shape != periods_arr.shape:
        raise MessageSetError("costs and periods must have matching shapes")
    if np.any(np.diff(periods_arr) < 0):
        raise MessageSetError("periods must be in non-decreasing order")
    if np.any(costs_arr < 0) or np.any(periods_arr <= 0) or blocking < 0:
        raise MessageSetError("costs/blocking must be >= 0 and periods > 0")

    response_times: list[float] = []
    for i in range(costs_arr.size):
        deadline = periods_arr[i]
        response = costs_arr[i] + blocking
        for _ in range(max_iterations):
            interference = np.sum(
                np.ceil(response / periods_arr[:i] - 1e-9) * costs_arr[:i]
            )
            updated = costs_arr[i] + blocking + interference
            if updated > deadline * (1.0 + 1e-12):
                response = updated
                break
            if abs(updated - response) <= 1e-12 * max(1.0, deadline):
                response = updated
                break
            response = updated
        response_times.append(float(response))
    return response_times
