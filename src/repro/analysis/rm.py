"""Rate-monotonic scheduling theory (the substrate of Theorem 4.1).

The paper's PDP analysis is the Lehoczky–Sha–Ding (LSD) exact
characterization of rate-monotonic schedulability, extended with protocol
overheads (augmented message lengths ``C'_i``) and a blocking term ``B``.
This module implements the underlying theory in task-level terms:

* :func:`liu_layland_bound` — the classic sufficient utilization bound
  ``n (2^{1/n} - 1)`` of Liu & Layland.
* :func:`hyperbolic_bound_holds` — Bini's hyperbolic sufficient test, a
  tighter polynomial-time check used to seed saturation searches.
* :class:`ExactRMTest` — the LSD exact test over the scheduling points
  ``R_i = { l·P_k : k <= i, 1 <= l <= floor(P_i/P_k) }`` with an additive
  blocking term, exactly the form of the paper's equation (4).  The test
  structure (scheduling points and the ``ceil(t/P_j)`` interference
  matrices) depends only on the periods, so it is precomputed once and then
  evaluated for many cost vectors — the breakdown search and the bandwidth
  sweep both exploit this heavily.
* :func:`response_time_analysis` — the equivalent iterative fixed-point
  test, kept as an independent oracle for property tests.

Throughout, tasks/streams are indexed in rate-monotonic priority order:
index 0 has the shortest period (highest priority).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import MessageSetError

__all__ = [
    "liu_layland_bound",
    "hyperbolic_bound_holds",
    "ExactRMTest",
    "StreamTestDetail",
    "response_time_analysis",
]


def liu_layland_bound(n: int) -> float:
    """The Liu–Layland sufficient utilization bound ``n (2^{1/n} - 1)``.

    Any set of ``n`` independent periodic tasks with total utilization at
    or below this bound is RM-schedulable.  Tends to ``ln 2 ≈ 0.693`` as
    ``n`` grows.
    """
    if n < 1:
        raise MessageSetError(f"need at least one task, got {n!r}")
    return n * (2.0 ** (1.0 / n) - 1.0)


def hyperbolic_bound_holds(utilizations: Sequence[float]) -> bool:
    """Bini's hyperbolic sufficient test: ``prod (U_i + 1) <= 2``.

    Strictly dominates the Liu–Layland bound (never rejects a set the LL
    bound accepts).  Used as a cheap pre-filter.
    """
    product = 1.0
    for u in utilizations:
        if u < 0:
            raise MessageSetError(f"utilization must be non-negative, got {u!r}")
        product *= u + 1.0
    return product <= 2.0


@dataclass(frozen=True)
class StreamTestDetail:
    """Per-stream outcome of the exact test.

    Attributes:
        index: stream position in RM priority order.
        schedulable: whether this stream meets its deadline.
        min_load_ratio: the minimized left-hand side of equation (4) —
            strictly below 1 means unsaturated, exactly 1 saturated,
            above 1 unschedulable.
        critical_point: the scheduling point ``t`` achieving the minimum.
    """

    index: int
    schedulable: bool
    min_load_ratio: float
    critical_point: float


class ExactRMTest:
    """The Lehoczky–Sha–Ding exact test with precomputed structure.

    Construction cost is ``O(sum_i |R_i| * i)`` time and memory; evaluation
    for one cost vector is a handful of vectorized operations per stream
    with early exit on the first unschedulable stream.

    Args:
        periods: task periods in *non-decreasing* order (RM priority
            order).  A non-monotone sequence is rejected: silently sorting
            would desynchronize the caller's cost vector.
    """

    def __init__(self, periods: Sequence[float]):
        periods_arr = np.asarray(periods, dtype=float)
        if periods_arr.ndim != 1 or periods_arr.size == 0:
            raise MessageSetError("periods must be a non-empty 1-D sequence")
        if np.any(periods_arr <= 0):
            raise MessageSetError("periods must be positive")
        if np.any(np.diff(periods_arr) < 0):
            raise MessageSetError(
                "periods must be in non-decreasing (rate-monotonic) order"
            )
        self._periods = periods_arr
        self._points: list[np.ndarray] = []
        self._interference: list[np.ndarray] = []
        self._build_structure()

    # -- structure ---------------------------------------------------------------

    def _build_structure(self) -> None:
        """Precompute scheduling points and interference matrices.

        For stream ``i`` the scheduling points are all multiples ``l·P_k``
        with ``k <= i`` and ``l·P_k <= P_i`` — the times at which a
        higher-priority busy period can end.  The interference matrix has
        one row per point ``t`` and one column per higher-priority stream
        ``j``, holding ``ceil(t / P_j)``.
        """
        periods = self._periods
        for i in range(periods.size):
            p_i = periods[i]
            multiples: list[np.ndarray] = []
            for k in range(i + 1):
                l_max = int(np.floor(p_i / periods[k] + 1e-12))
                if l_max >= 1:
                    multiples.append(periods[k] * np.arange(1, l_max + 1))
            points = np.unique(np.concatenate(multiples))
            # ceil with a tolerance: t is an exact multiple of some P_k, and
            # floating-point noise must not push ceil(t/P_j) up a step when
            # t/P_j is integral.
            ratios = points[:, None] / periods[None, :i]
            interference = np.ceil(ratios - 1e-9) if i > 0 else np.empty((points.size, 0))
            self._points.append(points)
            self._interference.append(interference)

    @property
    def periods(self) -> np.ndarray:
        """The period vector (read-only view)."""
        view = self._periods.view()
        view.flags.writeable = False
        return view

    @property
    def n_streams(self) -> int:
        """Number of streams the test was built for."""
        return self._periods.size

    def scheduling_points(self, index: int) -> np.ndarray:
        """The scheduling points ``R_i`` for stream ``index`` (a copy)."""
        return self._points[index].copy()

    # -- evaluation --------------------------------------------------------------

    def _validate_costs(self, costs: Sequence[float]) -> np.ndarray:
        arr = np.asarray(costs, dtype=float)
        if arr.shape != self._periods.shape:
            raise MessageSetError(
                f"expected {self._periods.size} costs, got shape {arr.shape}"
            )
        if np.any(arr < 0):
            raise MessageSetError("costs must be non-negative")
        return arr

    def stream_load_ratio(
        self, index: int, costs: Sequence[float], blocking: float = 0.0
    ) -> tuple[float, float]:
        """Minimized LHS of equation (4) for one stream.

        Returns ``(min_ratio, critical_point)``; the stream is schedulable
        iff ``min_ratio <= 1``.
        """
        arr = self._validate_costs(costs)
        points = self._points[index]
        demand = self._interference[index] @ arr[:index] + arr[index] + blocking
        ratios = demand / points
        best = int(np.argmin(ratios))
        return float(ratios[best]), float(points[best])

    def is_schedulable(
        self, costs: Sequence[float], blocking: float = 0.0
    ) -> bool:
        """True iff every stream passes the exact test.

        Evaluates streams in priority order and exits on the first failure,
        which makes unschedulable evaluations (the common case during a
        saturation search) cheap.
        """
        arr = self._validate_costs(costs)
        if blocking < 0:
            raise MessageSetError(f"blocking must be non-negative, got {blocking!r}")
        for i in range(arr.size):
            demand = self._interference[i] @ arr[:i] + arr[i] + blocking
            if not np.any(demand <= self._points[i] * (1.0 + 1e-12)):
                return False
        return True

    def details(
        self, costs: Sequence[float], blocking: float = 0.0
    ) -> list[StreamTestDetail]:
        """Full per-stream report (no early exit)."""
        arr = self._validate_costs(costs)
        report = []
        for i in range(arr.size):
            ratio, point = self.stream_load_ratio(i, arr, blocking)
            report.append(
                StreamTestDetail(
                    index=i,
                    schedulable=ratio <= 1.0 + 1e-12,
                    min_load_ratio=ratio,
                    critical_point=point,
                )
            )
        return report


def response_time_analysis(
    costs: Sequence[float],
    periods: Sequence[float],
    blocking: float = 0.0,
    max_iterations: int = 10_000,
) -> list[float]:
    """Iterative response-time analysis (Joseph & Pandya / Audsley).

    Computes, for each stream in RM order, the fixed point of

        ``R = C_i + B + sum_{j<i} ceil(R / P_j) * C_j``.

    The stream is schedulable iff its response time is at most its period.
    The iteration is cut off once ``R`` exceeds the period (the exact value
    past the deadline is irrelevant) and the period+cost upper bound is
    returned in that case, capped for reporting.

    This is mathematically equivalent to the LSD test and serves as an
    independent oracle in property tests.
    """
    costs_arr = np.asarray(costs, dtype=float)
    periods_arr = np.asarray(periods, dtype=float)
    if costs_arr.shape != periods_arr.shape:
        raise MessageSetError("costs and periods must have matching shapes")
    if np.any(np.diff(periods_arr) < 0):
        raise MessageSetError("periods must be in non-decreasing order")
    if np.any(costs_arr < 0) or np.any(periods_arr <= 0) or blocking < 0:
        raise MessageSetError("costs/blocking must be >= 0 and periods > 0")

    response_times: list[float] = []
    for i in range(costs_arr.size):
        deadline = periods_arr[i]
        response = costs_arr[i] + blocking
        for _ in range(max_iterations):
            interference = np.sum(
                np.ceil(response / periods_arr[:i] - 1e-9) * costs_arr[:i]
            )
            updated = costs_arr[i] + blocking + interference
            if updated > deadline * (1.0 + 1e-12):
                response = updated
                break
            if abs(updated - response) <= 1e-12 * max(1.0, deadline):
                response = updated
                break
            response = updated
        response_times.append(float(response))
    return response_times
