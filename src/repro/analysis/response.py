"""Worst-case response-time analysis for both protocols.

The schedulability theorems answer a yes/no question; designers usually
also want *how long* a message can take.  This module derives per-stream
worst-case response-time bounds from the same machinery:

* **PDP** — the response-time recurrence over the augmented lengths with
  the Lemma 4.1 blocking term,

      ``R_i = C'_i + B + Σ_{j<i} ceil(R_i/P_j)·C'_j``

  (fixed point; `analysis/rm.py::response_time_analysis`).  A stream is
  schedulable iff ``R_i <= P_i``, consistent with Theorem 4.1.

* **TTP** — from Johnson's token-timing bound: the first useful token
  visit arrives within ``2·TTRT`` of a message's arrival, subsequent
  visits within ``TTRT`` of each other, and the message needs
  ``v_i = ceil(C'_i / h_i)`` visits, the last of which may complete up to
  ``h_i`` into the visit:

      ``R_i <= 2·TTRT + (v_i - 1)·TTRT + h_i``

  For the local scheme ``v_i = q_i - 1``, giving ``R_i <= q_i·TTRT + h_i``
  — at most ``P_i + h_i`` in general and below ``P_i`` whenever the
  protocol constraint leaves slack, consistent with Theorem 5.1.

Both bounds are validated against the discrete-event simulators: observed
worst responses never exceed them (`tests/test_analysis_response.py`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.pdp import PDPAnalysis
from repro.analysis.rm import response_time_analysis
from repro.analysis.ttp import TTPAllocation, TTPAnalysis
from repro.errors import ConfigurationError
from repro.messages.message_set import MessageSet

__all__ = [
    "StreamResponseBound",
    "pdp_response_bounds",
    "ttp_response_bounds",
]


@dataclass(frozen=True)
class StreamResponseBound:
    """Worst-case response bound for one stream.

    Attributes:
        stream_index: index in the *original* message-set order.
        period_s: the stream's period (= deadline).
        bound_s: worst-case response-time bound, seconds.  ``inf`` when
            the stream is unschedulable (the recurrence diverges past the
            deadline, where its exact value stops being meaningful).
        meets_deadline: ``bound_s <= period_s``.
    """

    stream_index: int
    period_s: float
    bound_s: float

    @property
    def meets_deadline(self) -> bool:
        """True when the bound proves the deadline."""
        return self.bound_s <= self.period_s * (1 + 1e-12)

    @property
    def slack_s(self) -> float:
        """``P_i - R_i``; negative when the bound misses the deadline."""
        return self.period_s - self.bound_s


def pdp_response_bounds(
    analysis: PDPAnalysis, message_set: MessageSet
) -> list[StreamResponseBound]:
    """Worst-case response times under the priority driven protocol.

    Returns one bound per stream in the original message-set order.
    Streams whose recurrence exceeds the deadline are reported with
    ``bound_s = inf`` (Theorem 4.1 rejects them; past-deadline fixed
    points are not meaningful response times).
    """
    if len(message_set) == 0:
        return []
    ordered = message_set.rate_monotonic()
    lengths = analysis.augmented_lengths(ordered)
    responses = response_time_analysis(
        list(lengths), list(ordered.periods), analysis.blocking
    )

    # Map back from RM order to the caller's stream order.
    order = sorted(
        range(len(message_set)),
        key=lambda i: (
            message_set[i].period_s,
            message_set[i].payload_bits,
            message_set[i].station,
        ),
    )
    bounds: list[StreamResponseBound | None] = [None] * len(message_set)
    for rm_rank, original_index in enumerate(order):
        period = message_set[original_index].period_s
        response = responses[rm_rank]
        bounds[original_index] = StreamResponseBound(
            stream_index=original_index,
            period_s=period,
            bound_s=response if response <= period * (1 + 1e-12) else float("inf"),
        )
    return [b for b in bounds if b is not None]


def ttp_response_bounds(
    analysis: TTPAnalysis,
    message_set: MessageSet,
    allocation: TTPAllocation | None = None,
) -> list[StreamResponseBound]:
    """Worst-case response times under the timed token protocol.

    Uses the allocation the analysis would certify (or the supplied one).
    Streams whose allocation cannot carry them (``h_i <= F_ovhd``) get an
    infinite bound.
    """
    if len(message_set) == 0:
        return []
    if allocation is None:
        result = analysis.analyze(message_set)
        if result.allocation is None:
            raise ConfigurationError(
                f"no valid allocation for this set: {result.reason}"
            )
        allocation = result.allocation
    if len(allocation.bandwidths_s) != len(message_set):
        raise ConfigurationError(
            f"allocation covers {len(allocation.bandwidths_s)} streams, "
            f"message set has {len(message_set)}"
        )

    overhead = analysis.frame_overhead_time
    ttrt = allocation.ttrt_s
    bounds = []
    for index, stream in enumerate(message_set):
        h_i = allocation.bandwidths_s[index]
        payload_time = stream.payload_time(analysis.ring.bandwidth_bps)
        if payload_time == 0.0:
            visits = 1 if h_i > overhead else 0
        elif h_i <= overhead:
            visits = 0  # cannot even carry a frame header
        else:
            visits = math.ceil(payload_time / (h_i - overhead) - 1e-12)
        if visits == 0 and payload_time > 0:
            bound = float("inf")
        else:
            bound = 2.0 * ttrt + max(visits - 1, 0) * ttrt + h_i
        bounds.append(
            StreamResponseBound(
                stream_index=index, period_s=stream.period_s, bound_s=bound
            )
        )
    return bounds
