"""Target Token Rotation Time selection (Section 5.2 of the paper).

The timed token protocol's real-time performance is sensitive to TTRT.
Johnson's bound (token inter-arrival at a station is at most ``2·TTRT``)
forces ``TTRT <= P_min / 2`` for any deadline guarantee, but the paper
shows the breakdown utilization is usually maximized well below that:

* For equal periods ``P`` the optimum is near ``sqrt(δ·P)`` where ``δ`` is
  the per-rotation overhead.  (With ``q = P/TTRT`` token visits per period,
  the achievable utilization is roughly ``(1 - 1/q)(1 - q·δ/P)``, maximized
  at ``q* = sqrt(P/δ)``, i.e. ``TTRT* = sqrt(δ·P)``.)
* In the general case each station bids ``sqrt(δ·P_i)`` and the minimum
  wins, giving the heuristic ``TTRT = sqrt(δ·P_min)``.

This module provides those rules plus an exact numeric optimizer for the
Theorem 5.1 margin, all as interchangeable :class:`TTRTPolicy` objects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from repro.analysis.boundary import token_visit_counts
from repro.errors import ConfigurationError, InfeasibleParameterError
from repro.messages.message_set import MessageSet

__all__ = [
    "TTRTPolicy",
    "SqrtRuleTTRT",
    "HalfMinPeriodTTRT",
    "FixedTTRT",
    "OptimalTTRT",
    "sqrt_rule_ttrt",
    "half_min_period_ttrt",
    "optimal_ttrt",
    "ttp_saturation_scale",
]


def _validate_delta(delta: float) -> None:
    if delta < 0:
        raise ConfigurationError(f"overhead delta must be non-negative, got {delta!r}")


def sqrt_rule_ttrt(min_period_s: float, delta: float) -> float:
    """The paper's heuristic ``TTRT = sqrt(δ·P_min)``, clamped to ``P_min/2``.

    The clamp enforces Johnson's feasibility requirement (every station
    must see the token at least twice per period).  A zero ``δ`` (an ideal
    ring) degenerates the rule, so the result is floored at a small
    fraction of ``P_min`` to stay positive.
    """
    if min_period_s <= 0:
        raise ConfigurationError(f"minimum period must be positive, got {min_period_s!r}")
    _validate_delta(delta)
    raw = math.sqrt(delta * min_period_s)
    upper = min_period_s / 2.0
    lower = min_period_s * 1e-6
    return min(max(raw, lower), upper)


def half_min_period_ttrt(min_period_s: float) -> float:
    """The naive rule ``TTRT = P_min / 2`` (largest feasible value)."""
    if min_period_s <= 0:
        raise ConfigurationError(f"minimum period must be positive, got {min_period_s!r}")
    return min_period_s / 2.0


def ttp_saturation_scale(
    ttrt: float,
    periods_s: Sequence[float],
    payload_times_s: Sequence[float],
    delta: float,
    frame_overhead_time_s: float,
) -> float:
    """Largest payload scale λ that keeps Theorem 5.1 satisfied at ``ttrt``.

    Theorem 5.1 with payloads ``λ·C_i`` reads

        ``λ · Σ C_i / (q_i - 1) <= TTRT - δ - n·F_ovhd``

    so the saturation scale is closed-form.  Returns 0 when the TTRT is
    infeasible (some ``q_i < 2``) or the overheads already exhaust the
    rotation budget, and ``inf`` when every payload is zero yet the
    constraint holds (an empty workload never saturates).
    """
    periods = np.asarray(periods_s, dtype=float)
    payloads = np.asarray(payload_times_s, dtype=float)
    if ttrt <= 0:
        raise ConfigurationError(f"TTRT must be positive, got {ttrt!r}")
    _validate_delta(delta)
    q = token_visit_counts(periods, ttrt)
    if np.any(q < 2):
        return 0.0
    budget = ttrt - delta - periods.size * frame_overhead_time_s
    if budget <= 0:
        return 0.0
    per_rotation_demand = float(np.sum(payloads / (q - 1.0)))
    if per_rotation_demand == 0.0:
        return float("inf")
    return budget / per_rotation_demand


def optimal_ttrt(
    periods_s: Sequence[float],
    payload_times_s: Sequence[float],
    delta: float,
    frame_overhead_time_s: float,
    grid_points: int = 512,
    refine_rounds: int = 40,
) -> float:
    """Numerically maximize the saturation scale of Theorem 5.1 over TTRT.

    The objective :func:`ttp_saturation_scale` is piecewise smooth with
    breakpoints wherever some ``floor(P_i/TTRT)`` steps, so a log-spaced
    grid scan locates the best piece and golden-section refinement polishes
    within it.  The search space is ``(0, P_min/2]``.

    Raises :class:`InfeasibleParameterError` when no feasible TTRT exists
    (the overhead ``δ`` exceeds every candidate rotation budget).
    """
    periods = np.asarray(periods_s, dtype=float)
    if periods.size == 0:
        raise ConfigurationError("need at least one stream to optimize TTRT")
    p_min = float(np.min(periods))
    upper = p_min / 2.0
    lower = max(upper * 1e-4, delta * 1e-3, 1e-12)
    if lower >= upper:
        lower = upper / 2.0

    candidates = np.geomspace(lower, upper, grid_points)
    # Include the exact breakpoints P_i / m near the grid range: the optimum
    # frequently sits exactly at a floor step.
    breakpoints = []
    for p in np.unique(periods):
        m_low = max(2, int(p // upper))
        m_high = int(p // lower) if lower > 0 else m_low + grid_points
        m_high = min(m_high, m_low + 4 * grid_points)
        steps = p / np.arange(m_low, m_high + 1)
        breakpoints.append(steps[(steps >= lower) & (steps <= upper)])
    if breakpoints:
        candidates = np.unique(np.concatenate([candidates, *breakpoints]))

    scales = np.array(
        [
            ttp_saturation_scale(
                t, periods, payload_times_s, delta, frame_overhead_time_s
            )
            for t in candidates
        ]
    )
    best = int(np.argmax(scales))
    if not np.isfinite(scales[best]) or scales[best] <= 0.0:
        if np.any(np.isinf(scales)):
            # All-zero payloads: any feasible TTRT is "optimal"; use sqrt rule.
            return sqrt_rule_ttrt(p_min, delta)
        raise InfeasibleParameterError(
            "no TTRT in (0, P_min/2] satisfies the protocol constraint; "
            f"overheads delta={delta!r} are too large for P_min={p_min!r}"
        )

    # Golden-section refinement between the neighbours of the best grid point.
    lo = candidates[max(best - 1, 0)]
    hi = candidates[min(best + 1, candidates.size - 1)]
    inv_phi = (math.sqrt(5.0) - 1.0) / 2.0

    def objective(t: float) -> float:
        return ttp_saturation_scale(
            t, periods, payload_times_s, delta, frame_overhead_time_s
        )

    a, b = lo, hi
    c = b - inv_phi * (b - a)
    d = a + inv_phi * (b - a)
    fc, fd = objective(c), objective(d)
    for _ in range(refine_rounds):
        if fc >= fd:
            b, d, fd = d, c, fc
            c = b - inv_phi * (b - a)
            fc = objective(c)
        else:
            a, c, fc = c, d, fd
            d = a + inv_phi * (b - a)
            fd = objective(d)
    refined = (a + b) / 2.0
    return refined if objective(refined) >= scales[best] else float(candidates[best])


class TTRTPolicy(Protocol):
    """Strategy for choosing the TTRT for a given workload.

    Implementations receive the message set, the link bandwidth (to turn
    payload bits into times), the per-rotation overhead ``δ``, and the
    frame-overhead transmission time.
    """

    def select(
        self,
        message_set: MessageSet,
        bandwidth_bps: float,
        delta: float,
        frame_overhead_time_s: float,
    ) -> float:
        """Return the TTRT in seconds."""
        ...  # pragma: no cover - protocol definition


@dataclass(frozen=True)
class SqrtRuleTTRT:
    """The paper's bidding heuristic: every station bids ``sqrt(δ'·P_i)``.

    The ring adopts the minimum bid, ``sqrt(δ'·P_min)``, where ``δ'`` is
    the *total* per-rotation overhead — the token-walk/overrun term ``δ``
    plus the ``n·F_ovhd`` the local scheme's allocations spend on frame
    headers each rotation.  (The optimization that yields the sqrt rule
    maximizes ``(1 - 1/q)(1 - q·δ'/P)``, and every per-rotation overhead
    belongs in ``δ'``; with only ``δ`` the rule lands far below the true
    optimum on large rings, where ``n·F_ovhd`` dominates.)
    """

    def select(
        self,
        message_set: MessageSet,
        bandwidth_bps: float,
        delta: float,
        frame_overhead_time_s: float,
    ) -> float:
        """Bid sqrt(total overhead x P_min), clamped to P_min/2."""
        total_overhead = delta + len(message_set) * frame_overhead_time_s
        return sqrt_rule_ttrt(message_set.min_period, total_overhead)


@dataclass(frozen=True)
class HalfMinPeriodTTRT:
    """The naive maximal-feasible rule ``TTRT = P_min / 2``."""

    def select(
        self,
        message_set: MessageSet,
        bandwidth_bps: float,
        delta: float,
        frame_overhead_time_s: float,
    ) -> float:
        """Return P_min / 2."""
        return half_min_period_ttrt(message_set.min_period)


@dataclass(frozen=True)
class FixedTTRT:
    """A externally imposed TTRT value (for sweeps and what-if studies)."""

    ttrt_s: float

    def __post_init__(self) -> None:
        if self.ttrt_s <= 0:
            raise ConfigurationError(f"TTRT must be positive, got {self.ttrt_s!r}")

    def select(
        self,
        message_set: MessageSet,
        bandwidth_bps: float,
        delta: float,
        frame_overhead_time_s: float,
    ) -> float:
        """Return the configured TTRT."""
        return self.ttrt_s


@dataclass(frozen=True)
class OptimalTTRT:
    """Numeric per-workload optimum of the Theorem 5.1 margin."""

    grid_points: int = 512

    def select(
        self,
        message_set: MessageSet,
        bandwidth_bps: float,
        delta: float,
        frame_overhead_time_s: float,
    ) -> float:
        """Numerically maximize the Theorem 5.1 saturation scale."""
        payload_times = [s.payload_time(bandwidth_bps) for s in message_set]
        return optimal_ttrt(
            message_set.periods,
            payload_times,
            delta,
            frame_overhead_time_s,
            grid_points=self.grid_points,
        )
