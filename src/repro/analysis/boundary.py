"""The one boundary rule for token-visit counts ``q_i = floor(P_i / TTRT)``.

Both theorems quantize a period into token visits, and both protocols'
conclusions flip exactly at the quantization boundaries (Jain's FDDI
analysis makes the same observation for TTRT multiples).  Historically
each call site carried its own ``floor(P/TTRT + 1e-12)`` — an *absolute*
epsilon, which fails in both directions:

* **Undercount at exact multiples.**  For ``P = k·TTRT`` the float
  quotient ``P/TTRT`` can land up to a few ulps *below* ``k``; one ulp at
  ``k = 100_000`` is ``1.5e-11``, larger than the ``1e-12`` nudge, so the
  floor returned ``k - 1``.  Concrete regression: ``P=1.0,
  TTRT=1e-5`` gives ``1.0/1e-5 == 99999.99999999999`` and the old rule
  answered 99999 instead of 100000.
* **Overshoot just below the boundary.**  For small quotients the
  absolute nudge is *wide*: a period genuinely ``5e-13`` below
  ``2·TTRT`` was rounded up to ``q = 2`` and admitted.

This module replaces the absolute epsilon with a **relative** snap: the
quotient is floored, then snapped up to the nearest integer only when it
lies within :data:`Q_REL_TOL` (relative) below it — a few dozen ulps:
far wider than the worst-case rounding error of one multiply and one
divide (a couple of ulps), far narrower than any physically meaningful
period distinction, and narrower than the old absolute nudge at every
quotient magnitude that matters.

Scalar and vectorized variants use the identical sequence of float
operations, so their results agree bit for bit; the differential fuzzer
(:mod:`repro.verify`) cross-checks that invariant continuously.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["Q_REL_TOL", "token_visit_count", "token_visit_counts"]

#: Relative snap tolerance for quotients sitting just below an integer.
#: ``1e-14`` relative ≈ 45 ulps: generous against accumulated rounding in
#: the quotient (a multiply-divide chain errs by a few ulps), yet at the
#: critical ``q = 2`` admissibility edge the snap window is ``2e-14``
#: absolute — 50× tighter than the old ``+1e-12`` nudge.
Q_REL_TOL = 1e-14


def token_visit_count(period_s: float, ttrt_s: float) -> int:
    """``q = floor(period / ttrt)`` with the relative exact-multiple snap.

    The scalar twin of :func:`token_visit_counts`; the two perform the
    same float operations in the same order and agree bit for bit.
    """
    ratio = period_s / ttrt_s
    q = math.floor(ratio)
    nearest = math.floor(ratio + 0.5)
    if nearest > q and nearest - ratio <= Q_REL_TOL * nearest:
        return int(nearest)
    return int(q)


def token_visit_counts(
    periods_s: Sequence[float] | np.ndarray, ttrt_s: float
) -> np.ndarray:
    """Vectorized :func:`token_visit_count` over a period array.

    Returns a float array (the values are exact integers) of the same
    shape as ``periods_s``, elementwise bit-identical to the scalar rule.
    """
    ratio = np.asarray(periods_s, dtype=float) / ttrt_s
    q = np.floor(ratio)
    nearest = np.floor(ratio + 0.5)
    snap = (nearest > q) & (nearest - ratio <= Q_REL_TOL * nearest)
    return np.where(snap, nearest, q)
