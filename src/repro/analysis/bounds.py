"""Sufficient utilization bounds — the run-time administration rules.

Section 2 of the paper motivates *minimum breakdown utilization*: below
that load threshold no schedulability test is needed at admission time.
This module provides the closed-form sufficient bounds for both protocols:

* :func:`ttp_guaranteed_utilization` — the 33%-style bound for the timed
  token protocol with the local allocation scheme.  Derivation: with
  ``q_i = floor(P_i/TTRT) >= 2`` we have ``P_i > q_i·TTRT`` hence
  ``C_i/(q_i-1) < U_i·P_i/(q_i-1) <= U_i·TTRT·(q_i+1)/(q_i-1)
  <= 3·U_i·TTRT`` (the factor ``(q+1)/(q-1)`` peaks at 3 for ``q = 2``).
  Theorem 5.1 therefore holds whenever

      ``U <= (TTRT - δ - n·F_ovhd) / (3·TTRT)``

  which approaches the literature's 33% as the overheads vanish.

* :func:`pdp_guaranteed_utilization` — a Liu–Layland-style bound for the
  priority driven protocol: the exact test of Theorem 4.1 passes whenever
  the *augmented* utilization plus the blocking share is below the LL
  bound,

      ``Σ C'_i / P_i + B / P_min <= n (2^{1/n} - 1)``.

  Because ``C'_i`` is not linear in ``C_i`` (frame quantization, the Θ
  floor on the last frame), this is exposed as a *test* over a concrete
  message set rather than a single pure number; the corresponding scalar
  administration threshold comes from
  :func:`pdp_guaranteed_utilization` with a per-message overhead model.

Both bounds are strictly sufficient: property tests verify they imply the
exact criteria, never the converse.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.boundary import token_visit_count
from repro.analysis.pdp import PDPAnalysis
from repro.analysis.rm import liu_layland_bound
from repro.analysis.ttp import TTPAnalysis
from repro.errors import ConfigurationError
from repro.messages.message_set import MessageSet

__all__ = [
    "ttp_guaranteed_utilization",
    "pdp_augmented_utilization",
    "pdp_sufficient_test",
    "GuaranteeReport",
]


def ttp_guaranteed_utilization(
    ttrt_s: float,
    delta_s: float,
    n_streams: int,
    frame_overhead_time_s: float,
) -> float:
    """The sufficient utilization threshold for Theorem 5.1.

    Any message set with ``q_i >= 2`` for all streams and utilization at or
    below the returned value is schedulable under the local scheme at
    ``ttrt_s``.  Returns 0 when overheads already exhaust the rotation
    (then nothing can be guaranteed without a per-set test).
    """
    if ttrt_s <= 0:
        raise ConfigurationError(f"TTRT must be positive, got {ttrt_s!r}")
    if delta_s < 0 or frame_overhead_time_s < 0:
        raise ConfigurationError("overheads must be non-negative")
    if n_streams < 0:
        raise ConfigurationError(f"stream count must be non-negative, got {n_streams!r}")
    budget = ttrt_s - delta_s - n_streams * frame_overhead_time_s
    if budget <= 0:
        return 0.0
    return budget / (3.0 * ttrt_s)


def pdp_augmented_utilization(
    analysis: PDPAnalysis, message_set: MessageSet
) -> float:
    """``Σ C'_i / P_i``: the utilization of the augmented message lengths."""
    ordered = message_set.rate_monotonic()
    lengths = analysis.augmented_lengths(ordered)
    return float(
        sum(c / p for c, p in zip(lengths, ordered.periods))
    )


@dataclass(frozen=True)
class GuaranteeReport:
    """Outcome of a sufficient (utilization-based) admission test.

    Attributes:
        admitted: the sufficient condition holds — schedulability is
            guaranteed without running the exact test.
        load: the measured load term (augmented utilization + blocking
            share for the PDP; plain utilization for the TTP).
        threshold: the bound the load was compared against.
    """

    admitted: bool
    load: float
    threshold: float

    @property
    def margin(self) -> float:
        """``threshold - load``; positive iff admitted."""
        return self.threshold - self.load


def pdp_sufficient_test(
    analysis: PDPAnalysis, message_set: MessageSet
) -> GuaranteeReport:
    """Liu–Layland-style sufficient admission test for Theorem 4.1.

    Admits when ``Σ C'_i/P_i + B/P_min <= (n+1)(2^{1/(n+1)} - 1)``.
    Sound because the blocking term is modelled as a virtual
    highest-priority task of cost ``B`` and period ``P_min`` — its
    interference ``ceil(t/P_min)·B >= B`` dominates the real blocking in
    every stream's equation-(4) demand — and the LL bound for the
    ``n + 1``-task system then implies the exact test passes.
    """
    if len(message_set) == 0:
        return GuaranteeReport(admitted=True, load=0.0, threshold=1.0)
    augmented = pdp_augmented_utilization(analysis, message_set)
    load = augmented + analysis.blocking / message_set.min_period
    threshold = liu_layland_bound(len(message_set) + 1)
    return GuaranteeReport(
        admitted=load <= threshold, load=load, threshold=threshold
    )


def ttp_sufficient_test(
    analysis: TTPAnalysis, message_set: MessageSet
) -> GuaranteeReport:
    """The 33%-style sufficient admission test for Theorem 5.1.

    Admits when the set's plain utilization is at or below
    :func:`ttp_guaranteed_utilization` *and* every period supports at
    least two token visits at the policy-selected TTRT.
    """
    if len(message_set) == 0:
        return GuaranteeReport(admitted=True, load=0.0, threshold=1.0)
    ttrt = analysis.select_ttrt(message_set)
    threshold = ttp_guaranteed_utilization(
        ttrt, analysis.delta, len(message_set), analysis.frame_overhead_time
    )
    load = message_set.utilization(analysis.ring.bandwidth_bps)
    feasible = all(
        token_visit_count(p, ttrt) >= 2 for p in message_set.periods
    )
    return GuaranteeReport(
        admitted=feasible and load <= threshold,
        load=load,
        threshold=threshold if feasible else 0.0,
    )
