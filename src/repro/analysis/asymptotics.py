"""Analytic utilization ceilings — the algebra behind equation (14).

Section 6.2 of the paper explains Figure 1's shapes with per-frame
bandwidth-waste fractions.  This module turns that explanation into code:
for each protocol it computes the *utilization ceiling* — the largest
payload utilization the medium can carry once every per-frame and
per-rotation overhead is paid — as a closed form in the ring parameters.

These ceilings upper-bound the breakdown utilization at every bandwidth
and become tight as message sets grow dense, so they double as analytic
cross-checks on the Monte Carlo curves:

* **PDP**: each full frame carries ``F_info`` of payload and occupies
  ``max(F, Θ)`` of medium plus the token cost (``Θ/2`` per frame for the
  standard protocol; amortized to ~0 per frame for the modified protocol
  on long messages).  Hence

      ``ceiling_std = F_info / (max(F, Θ) + Θ/2)``
      ``ceiling_mod = F_info / max(F, Θ)``

  Both tend to ``F_info/Θ → 0`` as bandwidth grows (Θ is pinned by the
  propagation delay) — the collapse in Figure 1.

* **TTP**: per rotation, ``TTRT - δ`` of the rotation is available and the
  schedulability constraint spends ``C_i/(q_i - 1) ≈ U_i·P_i/(q_i - 1)``
  of it.  With ``q_i`` large (periods ≫ TTRT) the constraint approaches
  ``U·TTRT <= TTRT - δ``, giving

      ``ceiling = 1 - δ/TTRT - n·F_ovhd/TTRT``

  which tends to 1 as bandwidth grows — the monotone rise in Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.pdp import PDPVariant
from repro.errors import ConfigurationError
from repro.network.frames import FrameFormat
from repro.network.ring import RingNetwork

__all__ = [
    "pdp_utilization_ceiling",
    "ttp_utilization_ceiling",
    "CeilingCurves",
    "ceiling_curves",
]


def pdp_utilization_ceiling(
    ring: RingNetwork, frame: FrameFormat, variant: PDPVariant
) -> float:
    """Asymptotic payload-utilization ceiling of the priority driven protocol.

    The dense-traffic limit: long messages of full frames, no idle time.
    The standard protocol pays the average token circulation ``Θ/2`` per
    frame; the modified protocol amortizes token costs over whole messages
    so its per-frame cost is just the effective frame time.
    """
    effective = max(frame.frame_time(ring.bandwidth_bps), ring.theta)
    info = frame.info_time(ring.bandwidth_bps)
    if variant is PDPVariant.STANDARD:
        return info / (effective + ring.theta / 2.0)
    if variant is PDPVariant.MODIFIED:
        return info / effective
    raise ConfigurationError(f"unknown PDP variant: {variant!r}")  # pragma: no cover


def ttp_utilization_ceiling(
    ttrt_s: float,
    delta_s: float,
    n_streams: int,
    frame_overhead_time_s: float,
) -> float:
    """Asymptotic payload-utilization ceiling of the timed token protocol.

    The long-period limit of Theorem 5.1 (``q_i → ∞``): the per-rotation
    budget net of the token walk, asynchronous overrun, and each station's
    frame overhead.  Clamped at 0 when overheads exceed the rotation.
    """
    if ttrt_s <= 0:
        raise ConfigurationError(f"TTRT must be positive, got {ttrt_s!r}")
    if delta_s < 0 or frame_overhead_time_s < 0:
        raise ConfigurationError("overheads must be non-negative")
    ceiling = 1.0 - (delta_s + n_streams * frame_overhead_time_s) / ttrt_s
    return max(ceiling, 0.0)


@dataclass(frozen=True)
class CeilingCurves:
    """The three analytic ceilings at one bandwidth."""

    bandwidth_bps: float
    pdp_standard: float
    pdp_modified: float
    ttp: float


def ceiling_curves(
    pdp_ring: RingNetwork,
    ttp_ring: RingNetwork,
    frame: FrameFormat,
    ttrt_s: float,
    n_streams: int,
) -> CeilingCurves:
    """All three ceilings for one (bandwidth, TTRT) operating point.

    ``pdp_ring`` and ``ttp_ring`` must share a bandwidth (they differ in
    station bit delays and token length, exactly as in the paper).
    """
    if pdp_ring.bandwidth_bps != ttp_ring.bandwidth_bps:
        raise ConfigurationError(
            "the two rings must be evaluated at the same bandwidth; got "
            f"{pdp_ring.bandwidth_bps!r} and {ttp_ring.bandwidth_bps!r}"
        )
    delta = ttp_ring.theta + frame.frame_time(ttp_ring.bandwidth_bps)
    return CeilingCurves(
        bandwidth_bps=pdp_ring.bandwidth_bps,
        pdp_standard=pdp_utilization_ceiling(pdp_ring, frame, PDPVariant.STANDARD),
        pdp_modified=pdp_utilization_ceiling(pdp_ring, frame, PDPVariant.MODIFIED),
        ttp=ttp_utilization_ceiling(
            ttrt_s,
            delta,
            n_streams,
            frame.overhead_time(ttp_ring.bandwidth_bps),
        ),
    )
