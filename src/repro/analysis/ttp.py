"""Schedulability of the timed token protocol (Section 5, Theorem 5.1).

In the timed token protocol (FDDI), the token carries no priority; bounded
access is provided by the Target Token Rotation Time (TTRT) and the
per-station *synchronous bandwidths* ``h_i``: on each token arrival a
station may transmit synchronous traffic for at most ``h_i``, and
asynchronous traffic only with whatever earliness credit the token brought.

With the **local allocation scheme** of Agrawal/Chen/Zhao —

    ``q_i = floor(P_i / TTRT)``,
    ``h_i = C_i / (q_i - 1) + F_ovhd``

— Johnson's bound guarantees at least ``q_i - 1`` full-budget token visits
inside any period ``P_i``, so the deadline constraint holds by
construction and schedulability reduces to the **protocol constraint**

    ``Σ h_i <= TTRT - δ``,   ``δ = Θ + F_async``

which is exactly Theorem 5.1:

    ``Σ C_i / (floor(P_i/TTRT) - 1) + n·F_ovhd <= TTRT - δ``.

``δ`` bundles the token walk ``Θ`` with one asynchronous-overrun frame
``F_async`` (an asynchronous transmission begun just before its credit ran
out completes anyway).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, is_dataclass
from typing import Sequence

import numpy as np

from repro.analysis.boundary import token_visit_count, token_visit_counts
from repro.analysis.ttrt import SqrtRuleTTRT, TTRTPolicy, ttp_saturation_scale
from repro.errors import AllocationError, ConfigurationError
from repro.messages.message_set import MessageSet
from repro.network.frames import FrameFormat
from repro.network.ring import RingNetwork

__all__ = [
    "ttp_overhead_delta",
    "local_scheme_allocation",
    "TTPAllocation",
    "TTPSetResult",
    "TTPAnalysis",
]


def ttp_overhead_delta(ring: RingNetwork, async_frame_bits: float) -> float:
    """Per-rotation overhead ``δ = Θ + F_async`` (equation (11)).

    ``async_frame_bits`` is the total on-wire length of one asynchronous
    frame (payload + overhead); its transmission time bounds the
    asynchronous-overrun loss per rotation.
    """
    if async_frame_bits < 0:
        raise ConfigurationError(
            f"async frame length must be non-negative, got {async_frame_bits!r}"
        )
    return ring.theta + ring.transmission_time(async_frame_bits)


@dataclass(frozen=True)
class TTPAllocation:
    """A synchronous bandwidth allocation for one message set.

    Attributes:
        ttrt_s: the Target Token Rotation Time used.
        token_visits: ``q_i = floor(P_i / TTRT)`` per stream.
        bandwidths_s: the synchronous bandwidths ``h_i`` per stream.
        augmented_lengths_s: ``C'_i = C_i + (q_i - 1)·F_ovhd`` per stream.
        delta_s: the per-rotation overhead ``δ``.
    """

    ttrt_s: float
    token_visits: tuple[int, ...]
    bandwidths_s: tuple[float, ...]
    augmented_lengths_s: tuple[float, ...]
    delta_s: float

    @property
    def total_bandwidth_s(self) -> float:
        """``Σ h_i`` — the per-rotation synchronous demand."""
        return sum(self.bandwidths_s)

    @property
    def protocol_slack_s(self) -> float:
        """``TTRT - δ - Σ h_i``; non-negative iff the protocol constraint holds."""
        return self.ttrt_s - self.delta_s - self.total_bandwidth_s

    def satisfies_protocol_constraint(self) -> bool:
        """Equation (10): ``Σ h_i <= TTRT - δ`` (with float tolerance)."""
        return self.protocol_slack_s >= -1e-12 * max(self.ttrt_s, 1.0)

    def minimum_available_time(self, index: int) -> float:
        """``X_i = (q_i - 1)·h_i``: guaranteed transmission time per period.

        This is the worst-case time available to station ``index`` within
        one period of its stream, by Johnson's token-timing bound.
        """
        return (self.token_visits[index] - 1) * self.bandwidths_s[index]

    def satisfies_deadline_constraint(self) -> bool:
        """Equation (12): ``X_i >= C'_i`` for every stream.

        Always true for the local scheme (it solves this with equality up
        to the overhead rounding) but meaningful for other schemes.
        """
        return all(
            self.minimum_available_time(i) >= c - 1e-12 * max(c, 1.0)
            for i, c in enumerate(self.augmented_lengths_s)
        )


def local_scheme_allocation(
    message_set: MessageSet,
    ttrt_s: float,
    bandwidth_bps: float,
    frame_overhead_time_s: float,
    delta_s: float,
) -> TTPAllocation:
    """The local allocation scheme (equations (5)–(9)).

    Raises :class:`AllocationError` when some period gives ``q_i < 2`` —
    such a stream cannot be guaranteed at this TTRT no matter the
    bandwidth assignment, because the token may visit its station only
    once with full budget inside a period.
    """
    if ttrt_s <= 0:
        raise ConfigurationError(f"TTRT must be positive, got {ttrt_s!r}")
    if frame_overhead_time_s < 0:
        raise ConfigurationError(
            f"frame overhead time must be non-negative, got {frame_overhead_time_s!r}"
        )
    if getattr(message_set, "is_columnar", False):
        periods = np.asarray(message_set.periods, dtype=float)
        q = token_visit_counts(periods, ttrt_s)
        if np.any(q < 2):
            bad = int(np.argmax(q < 2))
            raise AllocationError(
                f"stream with period {float(periods[bad])!r}s sees the token "
                f"only {int(q[bad])} time(s) per period at TTRT={ttrt_s!r}s; "
                "the local scheme requires floor(P_i/TTRT) >= 2"
            )
        # Elementwise the same float operations as the scalar loop below
        # (q holds exact small integers, so q - 1.0 is exact), making the
        # whole allocation bit-identical to the object path.
        c = np.asarray(message_set.payloads_bits, dtype=float) / float(bandwidth_bps)
        return TTPAllocation(
            ttrt_s=ttrt_s,
            token_visits=tuple(int(v) for v in q),
            bandwidths_s=tuple((c / (q - 1.0) + frame_overhead_time_s).tolist()),
            augmented_lengths_s=tuple(
                (c + (q - 1.0) * frame_overhead_time_s).tolist()
            ),
            delta_s=delta_s,
        )
    visits: list[int] = []
    bandwidths: list[float] = []
    augmented: list[float] = []
    for stream in message_set:
        q_i = token_visit_count(stream.period_s, ttrt_s)
        if q_i < 2:
            raise AllocationError(
                f"stream with period {stream.period_s!r}s sees the token only "
                f"{q_i} time(s) per period at TTRT={ttrt_s!r}s; the local "
                "scheme requires floor(P_i/TTRT) >= 2"
            )
        c_i = stream.payload_time(bandwidth_bps)
        visits.append(q_i)
        bandwidths.append(c_i / (q_i - 1) + frame_overhead_time_s)
        augmented.append(c_i + (q_i - 1) * frame_overhead_time_s)
    return TTPAllocation(
        ttrt_s=ttrt_s,
        token_visits=tuple(visits),
        bandwidths_s=tuple(bandwidths),
        augmented_lengths_s=tuple(augmented),
        delta_s=delta_s,
    )


@dataclass(frozen=True)
class TTPSetResult:
    """Outcome of the Theorem 5.1 test for a whole message set.

    Attributes:
        schedulable: True iff the protocol constraint holds (the deadline
            constraint is implied by the local scheme's construction).
        allocation: the allocation tested, or None when no valid
            allocation exists at the selected TTRT.
        reason: human-readable explanation when unschedulable.
    """

    schedulable: bool
    allocation: TTPAllocation | None
    reason: str = ""

    @property
    def load_ratio(self) -> float:
        """``(Σ h_i) / (TTRT - δ)``; at most 1 iff schedulable, inf if no budget."""
        if self.allocation is None:
            return float("inf")
        budget = self.allocation.ttrt_s - self.allocation.delta_s
        if budget <= 0:
            return float("inf")
        return self.allocation.total_bandwidth_s / budget


class TTPAnalysis:
    """Theorem 5.1 schedulability test bound to one ring configuration.

    Args:
        ring: the physical ring (bandwidth included).
        frame: MAC frame format — only its overhead time enters the
            synchronous side (synchronous "frames" are the ``h_i`` budgets
            themselves), and its full length is used for the asynchronous
            overrun term unless ``async_frame_bits`` overrides it.
        ttrt_policy: TTRT selection strategy (paper default: sqrt rule).
        async_frame_bits: on-wire length of an asynchronous frame for the
            overrun term; defaults to the synchronous frame's total length.
    """

    def __init__(
        self,
        ring: RingNetwork,
        frame: FrameFormat,
        ttrt_policy: TTRTPolicy | None = None,
        async_frame_bits: float | None = None,
    ):
        self._ring = ring
        self._frame = frame
        self._policy: TTRTPolicy = ttrt_policy if ttrt_policy is not None else SqrtRuleTTRT()
        self._async_frame_bits = (
            frame.total_bits if async_frame_bits is None else float(async_frame_bits)
        )
        if self._async_frame_bits < 0:
            raise ConfigurationError(
                f"async frame length must be non-negative, got {async_frame_bits!r}"
            )

    # -- accessors ----------------------------------------------------------------

    @property
    def ring(self) -> RingNetwork:
        """The ring this analysis is bound to."""
        return self._ring

    @property
    def frame(self) -> FrameFormat:
        """The frame format this analysis is bound to."""
        return self._frame

    @property
    def ttrt_policy(self) -> TTRTPolicy:
        """The TTRT selection strategy in use."""
        return self._policy

    @property
    def delta(self) -> float:
        """Per-rotation overhead ``δ = Θ + F_async`` at the current bandwidth."""
        return ttp_overhead_delta(self._ring, self._async_frame_bits)

    @property
    def frame_overhead_time(self) -> float:
        """Transmission time of one frame's overhead bits."""
        return self._frame.overhead_time(self._ring.bandwidth_bps)

    def with_ring(self, ring: RingNetwork) -> "TTPAnalysis":
        """A copy bound to a different ring."""
        return TTPAnalysis(ring, self._frame, self._policy, self._async_frame_bits)

    def cache_signature(self) -> dict | None:
        """JSON-safe identity for content-addressed result-cache keys.

        The TTRT policy is part of the verdict, so it must be part of the
        key; the stock policies are frozen dataclasses whose fields pin
        them exactly.  A custom non-dataclass policy has no canonical
        description — return None, which disables caching rather than
        risking a collision.  See USAGE.md §13.
        """
        if not is_dataclass(self._policy):
            return None
        return {
            "analysis": "ttp",
            "ring": asdict(self._ring),
            "frame": asdict(self._frame),
            "ttrt_policy": {
                "type": type(self._policy).__name__,
                "params": asdict(self._policy),
            },
            "async_frame_bits": self._async_frame_bits,
        }

    # -- core computations ------------------------------------------------------------

    def select_ttrt(self, message_set: MessageSet) -> float:
        """The TTRT this analysis would use for ``message_set``."""
        return self._policy.select(
            message_set,
            self._ring.bandwidth_bps,
            self.delta,
            self.frame_overhead_time,
        )

    def allocate(
        self, message_set: MessageSet, ttrt_s: float | None = None
    ) -> TTPAllocation:
        """Local-scheme allocation at ``ttrt_s`` (policy-selected if None)."""
        if ttrt_s is None:
            ttrt_s = self.select_ttrt(message_set)
        return local_scheme_allocation(
            message_set,
            ttrt_s,
            self._ring.bandwidth_bps,
            self.frame_overhead_time,
            self.delta,
        )

    def analyze(
        self, message_set: MessageSet, ttrt_s: float | None = None
    ) -> TTPSetResult:
        """Full Theorem 5.1 report for ``message_set``."""
        if len(message_set) == 0:
            return TTPSetResult(True, None, "empty message set")
        try:
            allocation = self.allocate(message_set, ttrt_s)
        except AllocationError as exc:
            return TTPSetResult(False, None, str(exc))
        if allocation.satisfies_protocol_constraint():
            return TTPSetResult(True, allocation)
        return TTPSetResult(
            False,
            allocation,
            "protocol constraint violated: "
            f"sum(h_i)={allocation.total_bandwidth_s:.6g}s exceeds "
            f"TTRT-delta={allocation.ttrt_s - allocation.delta_s:.6g}s",
        )

    def is_schedulable(
        self, message_set: MessageSet, ttrt_s: float | None = None
    ) -> bool:
        """Theorem 5.1: can every synchronous deadline be guaranteed?"""
        return self.analyze(message_set, ttrt_s).schedulable

    def is_schedulable_many(self, message_sets: Sequence[MessageSet]) -> np.ndarray:
        """Theorem 5.1 verdicts for many independent message sets.

        Unlike the PDP exact test there is no shared precomputed structure
        to batch over — equation (13) is a closed form per set — so this
        is a plain sweep; it exists so the admission service can dispatch
        either protocol through one batched entry point.  An empty set is
        trivially schedulable; sets the local scheme cannot allocate
        (``q_i < 2``) raise :class:`~repro.errors.AllocationError` exactly
        as :meth:`is_schedulable` does, from the offending set's position.
        """
        return np.asarray(
            [len(ms) == 0 or self.is_schedulable(ms) for ms in message_sets],
            dtype=bool,
        )

    def saturation_scale(self, message_set: MessageSet) -> float:
        """Closed-form breakdown scale for Theorem 5.1.

        The protocol constraint is linear in the payloads, so for payloads
        ``λ·C_i`` the largest schedulable λ is

            ``λ* = (TTRT - δ - n·F_ovhd) / Σ (C_i / (q_i - 1))``.

        This is exact provided the TTRT policy is *scale invariant* —
        it must pick the same TTRT for ``λ·M`` as for ``M``.  All policies
        in :mod:`repro.analysis.ttrt` are: the sqrt rule and half-min rule
        depend only on periods and ``δ``, a fixed TTRT is constant, and the
        numeric optimum's objective scales uniformly in λ, leaving its
        argmax unchanged.
        """
        if len(message_set) == 0:
            raise ConfigurationError("cannot saturate an empty message set")
        ttrt = self.select_ttrt(message_set)
        payload_times = (
            np.asarray(message_set.payloads_bits, dtype=float)
            / self._ring.bandwidth_bps
        )
        return ttp_saturation_scale(
            ttrt,
            message_set.periods,
            payload_times,
            self.delta,
            self.frame_overhead_time,
        )

    def saturation_scales(self, message_sets: Sequence[MessageSet]) -> np.ndarray:
        """Closed-form breakdown scales for a whole population of sets.

        The per-set evaluation is already a handful of vectorized
        operations (Theorem 5.1 is linear in the payloads), so batching is
        a simple sweep; this exists so sweep and Monte Carlo drivers can
        treat both protocols uniformly through one batched entry point.
        """
        return np.asarray(
            [self.saturation_scale(ms) for ms in message_sets], dtype=float
        )

    def theorem_lhs(
        self, message_set: MessageSet, ttrt_s: float | None = None
    ) -> float:
        """Left-hand side of equation (13), in seconds.

        ``Σ C_i / (floor(P_i/TTRT) - 1) + n·F_ovhd``; useful in tests to
        confirm the algebraic equivalence with the allocation-based check.
        """
        if ttrt_s is None:
            ttrt_s = self.select_ttrt(message_set)
        periods = np.asarray(message_set.periods)
        payload_times = np.array(
            [s.payload_time(self._ring.bandwidth_bps) for s in message_set]
        )
        q = token_visit_counts(periods, ttrt_s)
        if np.any(q < 2):
            return float("inf")
        return float(
            np.sum(payload_times / (q - 1.0))
            + len(message_set) * self.frame_overhead_time
        )
