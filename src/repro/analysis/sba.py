"""Synchronous bandwidth allocation (SBA) schemes for the timed token protocol.

The paper adopts the **local scheme** (its equations (5)–(9)) for the main
comparison, citing the wider family studied by Agrawal, Chen & Zhao.  This
module implements that family so the design choice can be benchmarked:

* :class:`LocalScheme` — ``h_i = C_i/(q_i - 1) + F_ovhd``; uses only local
  information, minimum breakdown utilization 33%.
* :class:`FullLengthScheme` — ``h_i = C'_i``: each station may send its
  whole message on one visit.  Simple, but the protocol constraint then
  sums whole messages per rotation, which is wasteful.
* :class:`ProportionalScheme` — ``h_i = (C_i/P_i)·TTRT``: bandwidth in
  proportion to utilization.  The literature's negative baseline: it can
  never satisfy the worst-case deadline constraint for a positive load.
* :class:`NormalizedProportionalScheme` — ``h_i = (U_i/U)(TTRT - δ)``:
  proportional, but normalized so the rotation budget is exactly filled.
* :class:`EqualPartitionScheme` — ``h_i = (TTRT - δ)/n``: split the budget
  evenly regardless of demand.

Every scheme yields a :class:`~repro.analysis.ttp.TTPAllocation`; a set is
schedulable under a scheme iff the allocation satisfies both the protocol
constraint (eq. 10) and the deadline constraint (eq. 12, via the worst-case
available time ``X_i = (q_i - 1) h_i``).

Frame-overhead accounting for general ``h_i`` follows the paper's equation
(7): the message occupies ``C'_i = C_i + ceil(C'_i / h_i)·F_ovhd`` on the
wire (each token visit transmits one frame of length at most ``h_i``);
:func:`augmented_length_fixed_point` solves that recurrence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.analysis.boundary import token_visit_count
from repro.analysis.ttp import TTPAllocation, local_scheme_allocation
from repro.errors import AllocationError, ConfigurationError
from repro.messages.message_set import MessageSet

__all__ = [
    "SBAScheme",
    "LocalScheme",
    "FullLengthScheme",
    "ProportionalScheme",
    "NormalizedProportionalScheme",
    "EqualPartitionScheme",
    "augmented_length_fixed_point",
    "allocation_schedulable",
    "sba_breakdown_scale",
    "ALL_SCHEMES",
]


def augmented_length_fixed_point(
    payload_time_s: float,
    bandwidth_budget_s: float,
    frame_overhead_time_s: float,
    max_iterations: int = 10_000,
) -> float:
    """Solve ``C' = C + ceil(C'/h)·F_ovhd`` (equation (7)).

    Returns ``inf`` when ``h <= F_ovhd`` (a visit cannot carry any payload)
    unless the payload is zero.  The iteration is monotone increasing and
    jumps by at least ``F_ovhd`` per step, so it terminates quickly.
    """
    if payload_time_s < 0:
        raise ConfigurationError(
            f"payload time must be non-negative, got {payload_time_s!r}"
        )
    if payload_time_s == 0.0:
        return 0.0
    if bandwidth_budget_s <= frame_overhead_time_s:
        return float("inf")
    if frame_overhead_time_s == 0.0:
        return payload_time_s
    augmented = payload_time_s
    for _ in range(max_iterations):
        frames = math.ceil(augmented / bandwidth_budget_s - 1e-12)
        updated = payload_time_s + frames * frame_overhead_time_s
        if updated <= augmented + 1e-15:
            return updated
        augmented = updated
    raise AllocationError(
        "augmented-length fixed point failed to converge: "
        f"C={payload_time_s!r}, h={bandwidth_budget_s!r}, "
        f"F_ovhd={frame_overhead_time_s!r}"
    )


def _token_visits(period_s: float, ttrt_s: float) -> int:
    """``q_i = floor(P_i / TTRT)`` (the shared boundary rule)."""
    return token_visit_count(period_s, ttrt_s)


def _build_allocation(
    message_set: MessageSet,
    ttrt_s: float,
    bandwidth_bps: float,
    frame_overhead_time_s: float,
    delta_s: float,
    bandwidths_s: Sequence[float],
) -> TTPAllocation:
    """Assemble a TTPAllocation from per-station budgets ``h_i``."""
    visits = tuple(_token_visits(s.period_s, ttrt_s) for s in message_set)
    augmented = tuple(
        augmented_length_fixed_point(
            s.payload_time(bandwidth_bps), h, frame_overhead_time_s
        )
        for s, h in zip(message_set, bandwidths_s)
    )
    return TTPAllocation(
        ttrt_s=ttrt_s,
        token_visits=visits,
        bandwidths_s=tuple(float(h) for h in bandwidths_s),
        augmented_lengths_s=augmented,
        delta_s=delta_s,
    )


class SBAScheme(Protocol):
    """A synchronous bandwidth allocation strategy."""

    name: str

    def allocate(
        self,
        message_set: MessageSet,
        ttrt_s: float,
        bandwidth_bps: float,
        frame_overhead_time_s: float,
        delta_s: float,
    ) -> TTPAllocation:
        """Compute per-station synchronous bandwidths."""
        ...  # pragma: no cover - protocol definition


@dataclass(frozen=True)
class LocalScheme:
    """The paper's scheme: ``h_i = C_i/(q_i - 1) + F_ovhd`` (eq. 9)."""

    name: str = "local"

    def allocate(
        self,
        message_set: MessageSet,
        ttrt_s: float,
        bandwidth_bps: float,
        frame_overhead_time_s: float,
        delta_s: float,
    ) -> TTPAllocation:
        """Allocate with the local rule (delegates to the TTP module)."""
        return local_scheme_allocation(
            message_set, ttrt_s, bandwidth_bps, frame_overhead_time_s, delta_s
        )


@dataclass(frozen=True)
class FullLengthScheme:
    """``h_i = C'_i``: the whole (overhead-augmented) message per visit.

    The augmented length here is one frame per message: ``C'_i = C_i +
    F_ovhd``, because the entire message fits in a single token visit.
    """

    name: str = "full-length"

    def allocate(
        self,
        message_set: MessageSet,
        ttrt_s: float,
        bandwidth_bps: float,
        frame_overhead_time_s: float,
        delta_s: float,
    ) -> TTPAllocation:
        """Allocate each station its whole augmented message."""
        budgets = [
            s.payload_time(bandwidth_bps) + frame_overhead_time_s
            if s.payload_bits > 0
            else 0.0
            for s in message_set
        ]
        return _build_allocation(
            message_set, ttrt_s, bandwidth_bps, frame_overhead_time_s, delta_s, budgets
        )


@dataclass(frozen=True)
class ProportionalScheme:
    """``h_i = (C_i / P_i) · TTRT``: bandwidth proportional to utilization.

    Included as the classic negative baseline.  Under the worst-case
    availability bound ``X_i = (q_i - 1)·h_i`` this scheme can never
    guarantee a deadline for a positive load: ``(q_i - 1)·TTRT < P_i``
    implies ``X_i < C_i`` before overheads are even counted — the
    "worst-case achievable utilization is 0" result from the SBA
    literature.  Its breakdown scale is therefore always 0; it exists so
    the comparison benchmark can demonstrate exactly that.
    """

    name: str = "proportional"

    def allocate(
        self,
        message_set: MessageSet,
        ttrt_s: float,
        bandwidth_bps: float,
        frame_overhead_time_s: float,
        delta_s: float,
    ) -> TTPAllocation:
        """Allocate in proportion to stream utilization."""
        budgets = [
            s.payload_time(bandwidth_bps) / s.period_s * ttrt_s for s in message_set
        ]
        return _build_allocation(
            message_set, ttrt_s, bandwidth_bps, frame_overhead_time_s, delta_s, budgets
        )


@dataclass(frozen=True)
class NormalizedProportionalScheme:
    """``h_i = (U_i / U) · (TTRT - δ)``: fill the budget in proportion.

    The protocol constraint holds with equality by construction; only the
    deadline constraint can fail.  Needs a non-zero total utilization.
    """

    name: str = "normalized-proportional"

    def allocate(
        self,
        message_set: MessageSet,
        ttrt_s: float,
        bandwidth_bps: float,
        frame_overhead_time_s: float,
        delta_s: float,
    ) -> TTPAllocation:
        """Allocate the full budget in proportion to utilization."""
        utilizations = [s.utilization(bandwidth_bps) for s in message_set]
        total = sum(utilizations)
        if total == 0.0:
            raise AllocationError(
                "normalized-proportional scheme is undefined for an all-zero "
                "message set"
            )
        budget = ttrt_s - delta_s
        if budget <= 0:
            raise AllocationError(
                f"no rotation budget: TTRT={ttrt_s!r} <= delta={delta_s!r}"
            )
        budgets = [u / total * budget for u in utilizations]
        return _build_allocation(
            message_set, ttrt_s, bandwidth_bps, frame_overhead_time_s, delta_s, budgets
        )


@dataclass(frozen=True)
class EqualPartitionScheme:
    """``h_i = (TTRT - δ) / n``: split the rotation budget evenly."""

    name: str = "equal-partition"

    def allocate(
        self,
        message_set: MessageSet,
        ttrt_s: float,
        bandwidth_bps: float,
        frame_overhead_time_s: float,
        delta_s: float,
    ) -> TTPAllocation:
        """Split the rotation budget evenly across stations."""
        budget = ttrt_s - delta_s
        if budget <= 0:
            raise AllocationError(
                f"no rotation budget: TTRT={ttrt_s!r} <= delta={delta_s!r}"
            )
        share = budget / len(message_set)
        return _build_allocation(
            message_set,
            ttrt_s,
            bandwidth_bps,
            frame_overhead_time_s,
            delta_s,
            [share] * len(message_set),
        )


#: All implemented schemes, in the order used by the comparison benchmark.
ALL_SCHEMES: tuple[SBAScheme, ...] = (
    LocalScheme(),
    FullLengthScheme(),
    ProportionalScheme(),
    NormalizedProportionalScheme(),
    EqualPartitionScheme(),
)


def allocation_schedulable(allocation: TTPAllocation) -> bool:
    """Both acceptability constraints of Section 5.3 hold."""
    return (
        allocation.satisfies_protocol_constraint()
        and allocation.satisfies_deadline_constraint()
    )


def sba_breakdown_scale(
    scheme: SBAScheme,
    message_set: MessageSet,
    ttrt_s: float,
    bandwidth_bps: float,
    frame_overhead_time_s: float,
    delta_s: float,
    grid_points: int = 256,
    refine_steps: int = 40,
) -> float:
    """Largest payload scale schedulable under ``scheme`` at ``ttrt_s``.

    Robust to feasible regions that are not downward closed (possible in
    principle for budget-coupled schemes, where growing a payload changes
    ``h_i`` and the frame count together): scans a log grid of scales from
    large to small for the first feasible point, then bisects the upper
    boundary.  Returns 0 when no scanned scale is feasible.
    """
    if len(message_set) == 0:
        raise ConfigurationError("cannot saturate an empty message set")
    if message_set.total_payload_bits() == 0:
        return 0.0

    def feasible(scale: float) -> bool:
        try:
            allocation = scheme.allocate(
                message_set.scaled(scale),
                ttrt_s,
                bandwidth_bps,
                frame_overhead_time_s,
                delta_s,
            )
        except AllocationError:
            return False
        return allocation_schedulable(allocation)

    # Upper anchor: scale at which raw payload utilization is far above 1;
    # no protocol can schedule past that.
    base_utilization = message_set.utilization(bandwidth_bps)
    upper = 4.0 / base_utilization if base_utilization > 0 else 1.0
    grid = [upper * (1e-6 / 1.0) ** (i / (grid_points - 1)) for i in range(grid_points)]

    last_feasible = None
    first_infeasible_above = upper * 4.0
    for scale in grid:  # descending
        if feasible(scale):
            last_feasible = scale
            break
        first_infeasible_above = scale
    if last_feasible is None:
        return 0.0

    lo, hi = last_feasible, first_infeasible_above
    for _ in range(refine_steps):
        mid = math.sqrt(lo * hi)
        if feasible(mid):
            lo = mid
        else:
            hi = mid
    return lo
