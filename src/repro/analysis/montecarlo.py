"""Monte Carlo estimation of average breakdown utilization (Section 6.1).

The *average breakdown utilization* of a protocol is the expected
utilization of a message set drawn from the saturated schedulable class.
Following Lehoczky, Sha & Ding, it is estimated by sampling random message
sets from the period/length distributions, scaling each to its saturation
boundary, and averaging the resulting utilizations.

The estimator returns the sample mean together with its standard error and
a normal-approximation confidence interval, so experiment code can report
how trustworthy each plotted point is.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
import numpy as np

from repro.analysis.breakdown import (
    SchedulabilityPredicate,
    SupportsBatchScaleProbe,
    SupportsSaturationScale,
    breakdown_utilization,
    breakdown_utilizations_batch,
)
from repro.errors import ConfigurationError
from repro.messages.generators import MessageSetSampler
from repro.obs import metrics as _metrics

#: Monte Carlo accounting: sampled sets and the two degenerate breakdown
#: outcomes (scale 0 — overheads alone unschedulable — versus scale inf).
#: Partitioning-invariant: counted per estimate, inside the grid cell.
_SETS_SAMPLED = _metrics.counter("montecarlo.sets_sampled")
_DEGENERATE = _metrics.counter("montecarlo.degenerate_sets")
_ZERO_SCALE = _metrics.counter("montecarlo.zero_scale_sets")
_INF_SCALE = _metrics.counter("montecarlo.infinite_scale_sets")

__all__ = [
    "AverageBreakdownEstimate",
    "StreamingBreakdownEstimate",
    "BATCH_CHUNK_SETS",
    "average_breakdown_utilization",
    "breakdown_samples",
    "breakdown_samples_for_sets",
    "streaming_average_breakdown_utilization",
]


@dataclass(frozen=True)
class AverageBreakdownEstimate:
    """A Monte Carlo estimate of the average breakdown utilization.

    Attributes:
        mean: sample mean of the per-set breakdown utilizations.
        std: sample standard deviation (ddof=1; 0 for a single sample).
        n_sets: number of message sets sampled.
        samples: the individual breakdown utilizations.
        degenerate_sets: how many sampled sets had no finite positive
            breakdown point (counted into the mean as utilization 0 when
            the scale was 0 — overheads alone unschedulable — and excluded
            when infinite, which cannot occur for positive payload laws).
    """

    mean: float
    std: float
    n_sets: int
    samples: tuple[float, ...]
    degenerate_sets: int = 0

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.n_sets <= 1:
            return float("inf") if self.n_sets == 1 else float("nan")
        return self.std / math.sqrt(self.n_sets)

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval (default 95%)."""
        if self.n_sets <= 1:
            return (float("-inf"), float("inf"))
        half = z * self.stderr
        return (self.mean - half, self.mean + half)


#: Maximum number of sets whose precomputed exact-test structures are held
#: live at once by the lockstep batched search.  At paper scale (100
#: streams) each structure runs to tens of megabytes, so the batch is
#: processed in chunks; within a chunk every bisection step is one batched
#: predicate call.
BATCH_CHUNK_SETS = 16


def breakdown_samples(
    predicate: SchedulabilityPredicate | SupportsSaturationScale,
    sampler: MessageSetSampler,
    bandwidth_bps: float,
    n_sets: int,
    rng: np.random.Generator,
    rel_tol: float = 1e-4,
) -> tuple[list[float], int]:
    """Per-set breakdown utilizations for ``n_sets`` sampled workloads.

    Returns ``(samples, degenerate_count)``.  The two degenerate breakdown
    scales are accounted *asymmetrically*, and both are counted in
    ``degenerate_count``:

    * scale ``inf`` (all-zero payloads): the set is **skipped** — it
      contributes no sample and does not enter the mean;
    * scale ``0``: the set is counted into ``degenerate_count`` **and**
      appended to ``samples`` with utilization exactly 0, so it *does*
      drag the mean down — the protocol cannot carry even infinitesimal
      synchronous load under those overheads, which is real behaviour (it
      happens to TTP at very low bandwidth), not a sampling artifact.

    This double accounting is deliberate and load-bearing: Figure 1's
    low-bandwidth means depend on scale-0 sets contributing zeros.
    ``len(samples) + degenerate_count`` can therefore exceed ``n_sets``.

    Analyses that support batched probing
    (:class:`~repro.analysis.breakdown.SupportsBatchScaleProbe`) or
    closed-form saturation are evaluated through the lockstep batched
    search in chunks of :data:`BATCH_CHUNK_SETS`; the verdicts and scales
    are identical to the scalar path either way.
    """
    if n_sets < 1:
        raise ConfigurationError(f"need at least one sample, got {n_sets!r}")
    message_sets = sampler.sample_many(rng, n_sets)
    samples, zero_scale, inf_scale = breakdown_samples_for_sets(
        predicate, message_sets, bandwidth_bps, rel_tol
    )
    degenerate = zero_scale + inf_scale
    _ZERO_SCALE.inc(zero_scale)
    _INF_SCALE.inc(inf_scale)
    _SETS_SAMPLED.inc(n_sets)
    _DEGENERATE.inc(degenerate)
    return samples, degenerate


def breakdown_samples_for_sets(
    predicate: SchedulabilityPredicate | SupportsSaturationScale,
    message_sets,
    bandwidth_bps: float,
    rel_tol: float = 1e-4,
) -> tuple[list[float], int, int]:
    """Breakdown utilizations of already-sampled sets; the shared core of
    the fixed-N and streaming estimators.

    Returns ``(samples, zero_scale_count, infinite_scale_count)`` with the
    degenerate accounting of :func:`breakdown_samples` (zero-scale sets
    appear in ``samples`` as exact 0.0, infinite-scale sets are skipped).
    Deliberately increments **no** Monte Carlo metrics — the callers
    account folded work themselves, so speculative streaming chunks that
    end up discarded never inflate the counters.
    """
    if isinstance(predicate, (SupportsSaturationScale, SupportsBatchScaleProbe)):
        results = []
        for start in range(0, len(message_sets), BATCH_CHUNK_SETS):
            results.extend(
                breakdown_utilizations_batch(
                    message_sets[start : start + BATCH_CHUNK_SETS],
                    predicate,
                    bandwidth_bps,
                    rel_tol,
                )
            )
    else:
        results = [
            breakdown_utilization(message_set, predicate, bandwidth_bps, rel_tol)
            for message_set in message_sets
        ]
    samples: list[float] = []
    zero_scale = 0
    inf_scale = 0
    for result in results:
        if result.scale == float("inf"):
            inf_scale += 1
            continue
        if result.scale == 0.0:
            zero_scale += 1
        samples.append(result.utilization)
    return samples, zero_scale, inf_scale


@dataclass(frozen=True)
class StreamingBreakdownEstimate:
    """Result of the accuracy-targeted streaming estimator.

    The estimate is built from *chunk means*: chunks are generated and
    evaluated independently (chunk ``k`` always uses the generator seeded
    ``[*seed, k]``), each contributes the mean of its breakdown samples,
    and the running mean/variance over those i.i.d. chunk means drives
    both the reported value and the stopping rule.

    Attributes:
        mean: mean of the folded chunk means.
        std: sample standard deviation of the chunk means (ddof=1).
        n_chunks: chunks folded into the estimate (at least one sample).
        chunk_sets: message sets generated per chunk.
        n_sets: breakdown samples folded (zero-scale sets included).
        evaluations: message sets generated and evaluated, including
            infinite-scale skips — the cost the stopping rule is spending.
        degenerate_sets: zero- plus infinite-scale sets encountered.
        eps: the target CI half-width the run was asked to reach.
        z: the normal quantile used for the half-width.
        converged: True when the half-width reached ``eps`` before the
            ``max_sets`` cap.
        chunk_means: the folded chunk means, in chunk order.
    """

    mean: float
    std: float
    n_chunks: int
    chunk_sets: int
    n_sets: int
    evaluations: int
    degenerate_sets: int
    eps: float
    z: float
    converged: bool
    chunk_means: tuple[float, ...]

    @property
    def stderr(self) -> float:
        """Standard error of the mean of chunk means."""
        if self.n_chunks <= 1:
            return float("inf") if self.n_chunks == 1 else float("nan")
        return self.std / math.sqrt(self.n_chunks)

    @property
    def half_width(self) -> float:
        """``z * stderr`` — the CI half-width the stopping rule tracks."""
        return self.z * self.stderr

    def confidence_interval(self) -> tuple[float, float]:
        """Normal-approximation confidence interval at the run's ``z``."""
        if self.n_chunks <= 1:
            return (float("-inf"), float("inf"))
        return (self.mean - self.half_width, self.mean + self.half_width)


@dataclass(frozen=True)
class _StreamingSpec:
    """Compact, picklable description of one streaming-estimation job.

    This — plus an integer chunk index — is everything a worker needs, so
    the parallel path ships no message-set objects at all (the sets are
    regenerated inside the worker from the chunk seed).
    """

    predicate: object
    sampler: MessageSetSampler
    bandwidth_bps: float
    rel_tol: float
    chunk_sets: int
    strata: int
    antithetic: bool
    seed: tuple[int, ...]


def _streaming_chunk(
    spec: _StreamingSpec, chunk_index: int
) -> tuple[list[float], int, int]:
    """Generate and evaluate one chunk (module-level for pool pickling)."""
    rng = np.random.default_rng([*spec.seed, chunk_index])
    message_sets = spec.sampler.sample_many_stratified(
        rng, spec.chunk_sets, strata=spec.strata, antithetic=spec.antithetic
    )
    return breakdown_samples_for_sets(
        spec.predicate, message_sets, spec.bandwidth_bps, spec.rel_tol
    )


def streaming_average_breakdown_utilization(
    predicate: SchedulabilityPredicate | SupportsSaturationScale,
    sampler: MessageSetSampler,
    bandwidth_bps: float,
    *,
    seed: "int | tuple[int, ...] | list[int] | None" = None,
    eps: float = 1e-3,
    z: float = 1.96,
    chunk_sets: int = BATCH_CHUNK_SETS,
    min_chunks: int = 4,
    max_sets: int = 4096,
    strata: int = 1,
    antithetic: bool = False,
    rel_tol: float = 1e-4,
    jobs: int | None = 1,
) -> StreamingBreakdownEstimate:
    """Estimate average breakdown utilization to a target accuracy.

    Instead of a fixed sample count, chunks of ``chunk_sets`` sets are
    generated, pushed through the batched breakdown kernels, and folded
    into a Welford-style running mean/variance of chunk means until the
    normal-approximation CI half-width drops below ``eps`` (after at
    least ``min_chunks`` folded chunks), or the ``max_sets`` evaluation
    cap is hit — whichever comes first.

    Variance reduction: ``strata`` applies Latin-hypercube period
    stratification within each chunk and ``antithetic`` pairs every set
    with its period-reflected twin (see
    :meth:`MessageSetSampler.sample_many_stratified`).  Because paired
    protocol comparisons evaluate PDP and TTP on the *same* sampled sets
    (same seed → same chunks), stratification and antithetic pairing are
    automatically paired across protocols too.  With ``strata=1`` and
    ``antithetic=False`` chunk ``k`` is bit-identical to the fixed-N
    path's first ``chunk_sets`` draws from ``default_rng([*seed, k])``.

    Determinism: chunk ``k`` depends only on ``(seed, k)`` and chunks are
    folded strictly in index order, so the returned estimate is identical
    for every ``jobs`` value — workers merely compute chunks
    speculatively in waves, and any chunks past the stopping point are
    discarded (their wall-clock work is the price of parallelism; folded
    Monte Carlo metrics are accounted by the parent only for folded
    chunks, though predicate-internal metrics from speculative chunks do
    merge).

    Args:
        seed: an int or a sequence of ints; chunk ``k`` uses
            ``np.random.default_rng([*seed, k])``.  None draws fresh
            entropy (the run is then not reproducible).
        jobs: worker processes for speculative chunk evaluation; 1 runs
            inline, 0 means all cores (the estimate never changes).
    """
    if eps <= 0:
        raise ConfigurationError(f"eps must be positive, got {eps!r}")
    if z <= 0:
        raise ConfigurationError(f"z must be positive, got {z!r}")
    if chunk_sets < 1:
        raise ConfigurationError(f"chunk_sets must be >= 1, got {chunk_sets!r}")
    if min_chunks < 2:
        raise ConfigurationError(f"min_chunks must be >= 2, got {min_chunks!r}")
    if max_sets < chunk_sets:
        raise ConfigurationError(
            f"max_sets ({max_sets!r}) must cover at least one chunk "
            f"({chunk_sets!r} sets)"
        )
    if seed is None:
        seed_tuple: tuple[int, ...] = (int(np.random.SeedSequence().entropy),)
    elif isinstance(seed, (int, np.integer)):
        seed_tuple = (int(seed),)
    else:
        seed_tuple = tuple(int(s) for s in seed)
    # Deferred import: the analysis layer stays import-light, and the
    # experiments package imports analysis at module load.
    from repro.experiments.parallel import parallel_map, resolve_jobs

    spec = _StreamingSpec(
        predicate=predicate,
        sampler=sampler,
        bandwidth_bps=bandwidth_bps,
        rel_tol=rel_tol,
        chunk_sets=int(chunk_sets),
        strata=int(strata),
        antithetic=bool(antithetic),
        seed=seed_tuple,
    )
    max_chunks = max(1, max_sets // chunk_sets)
    wave_size = max(1, resolve_jobs(jobs))

    count = 0  # folded chunks with at least one sample (Welford K)
    running_mean = 0.0
    running_m2 = 0.0
    chunk_means: list[float] = []
    n_samples = 0
    evaluations = 0
    degenerate = 0
    converged = False
    next_chunk = 0
    while next_chunk < max_chunks and not converged:
        wave = list(range(next_chunk, min(next_chunk + wave_size, max_chunks)))
        outcomes = parallel_map(
            _streaming_chunk,
            wave,
            shared=spec,
            jobs=jobs,
            label="mc-stream",
        )
        for chunk_index, (samples, zero_scale, inf_scale) in zip(wave, outcomes):
            next_chunk = chunk_index + 1
            evaluations += chunk_sets
            degenerate += zero_scale + inf_scale
            _SETS_SAMPLED.inc(chunk_sets)
            _ZERO_SCALE.inc(zero_scale)
            _INF_SCALE.inc(inf_scale)
            _DEGENERATE.inc(zero_scale + inf_scale)
            if samples:
                chunk_mean = float(np.mean(np.asarray(samples)))
                chunk_means.append(chunk_mean)
                n_samples += len(samples)
                count += 1
                delta = chunk_mean - running_mean
                running_mean += delta / count
                running_m2 += delta * (chunk_mean - running_mean)
            if count >= min_chunks:
                std = math.sqrt(running_m2 / (count - 1))
                if z * std / math.sqrt(count) <= eps:
                    converged = True
                    break

    std = math.sqrt(running_m2 / (count - 1)) if count > 1 else 0.0
    return StreamingBreakdownEstimate(
        mean=running_mean if count else 0.0,
        std=std,
        n_chunks=count,
        chunk_sets=int(chunk_sets),
        n_sets=n_samples,
        evaluations=evaluations,
        degenerate_sets=degenerate,
        eps=float(eps),
        z=float(z),
        converged=converged,
        chunk_means=tuple(chunk_means),
    )


def average_breakdown_utilization(
    predicate: SchedulabilityPredicate | SupportsSaturationScale,
    sampler: MessageSetSampler,
    bandwidth_bps: float,
    n_sets: int,
    rng: np.random.Generator | int | None = None,
    rel_tol: float = 1e-4,
) -> AverageBreakdownEstimate:
    """Estimate the average breakdown utilization of a protocol.

    Args:
        predicate: a schedulability test — an analysis object
            (:class:`~repro.analysis.pdp.PDPAnalysis`,
            :class:`~repro.analysis.ttp.TTPAnalysis`) or a plain callable
            over message sets.
        sampler: the workload distribution.
        bandwidth_bps: bandwidth at which utilizations are evaluated (must
            match the ring inside the predicate for meaningful results).
        n_sets: Monte Carlo sample count.
        rng: a numpy Generator, a seed, or None for fresh entropy.
        rel_tol: relative tolerance of the bisection saturation search.
    """
    if isinstance(rng, np.random.Generator):
        generator = rng
    else:
        generator = np.random.default_rng(rng)
    samples, degenerate = breakdown_samples(
        predicate, sampler, bandwidth_bps, n_sets, generator, rel_tol
    )
    if not samples:
        return AverageBreakdownEstimate(
            mean=0.0, std=0.0, n_sets=0, samples=(), degenerate_sets=degenerate
        )
    arr = np.asarray(samples)
    std = float(np.std(arr, ddof=1)) if arr.size > 1 else 0.0
    return AverageBreakdownEstimate(
        mean=float(np.mean(arr)),
        std=std,
        n_sets=int(arr.size),
        samples=tuple(float(s) for s in arr),
        degenerate_sets=degenerate,
    )
