"""Monte Carlo estimation of average breakdown utilization (Section 6.1).

The *average breakdown utilization* of a protocol is the expected
utilization of a message set drawn from the saturated schedulable class.
Following Lehoczky, Sha & Ding, it is estimated by sampling random message
sets from the period/length distributions, scaling each to its saturation
boundary, and averaging the resulting utilizations.

The estimator returns the sample mean together with its standard error and
a normal-approximation confidence interval, so experiment code can report
how trustworthy each plotted point is.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
import numpy as np

from repro.analysis.breakdown import (
    SchedulabilityPredicate,
    SupportsBatchScaleProbe,
    SupportsSaturationScale,
    breakdown_utilization,
    breakdown_utilizations_batch,
)
from repro.errors import ConfigurationError
from repro.messages.generators import MessageSetSampler
from repro.obs import metrics as _metrics

#: Monte Carlo accounting: sampled sets and the two degenerate breakdown
#: outcomes (scale 0 — overheads alone unschedulable — versus scale inf).
#: Partitioning-invariant: counted per estimate, inside the grid cell.
_SETS_SAMPLED = _metrics.counter("montecarlo.sets_sampled")
_DEGENERATE = _metrics.counter("montecarlo.degenerate_sets")
_ZERO_SCALE = _metrics.counter("montecarlo.zero_scale_sets")
_INF_SCALE = _metrics.counter("montecarlo.infinite_scale_sets")

__all__ = [
    "AverageBreakdownEstimate",
    "BATCH_CHUNK_SETS",
    "average_breakdown_utilization",
    "breakdown_samples",
]


@dataclass(frozen=True)
class AverageBreakdownEstimate:
    """A Monte Carlo estimate of the average breakdown utilization.

    Attributes:
        mean: sample mean of the per-set breakdown utilizations.
        std: sample standard deviation (ddof=1; 0 for a single sample).
        n_sets: number of message sets sampled.
        samples: the individual breakdown utilizations.
        degenerate_sets: how many sampled sets had no finite positive
            breakdown point (counted into the mean as utilization 0 when
            the scale was 0 — overheads alone unschedulable — and excluded
            when infinite, which cannot occur for positive payload laws).
    """

    mean: float
    std: float
    n_sets: int
    samples: tuple[float, ...]
    degenerate_sets: int = 0

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.n_sets <= 1:
            return float("inf") if self.n_sets == 1 else float("nan")
        return self.std / math.sqrt(self.n_sets)

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval (default 95%)."""
        if self.n_sets <= 1:
            return (float("-inf"), float("inf"))
        half = z * self.stderr
        return (self.mean - half, self.mean + half)


#: Maximum number of sets whose precomputed exact-test structures are held
#: live at once by the lockstep batched search.  At paper scale (100
#: streams) each structure runs to tens of megabytes, so the batch is
#: processed in chunks; within a chunk every bisection step is one batched
#: predicate call.
BATCH_CHUNK_SETS = 16


def breakdown_samples(
    predicate: SchedulabilityPredicate | SupportsSaturationScale,
    sampler: MessageSetSampler,
    bandwidth_bps: float,
    n_sets: int,
    rng: np.random.Generator,
    rel_tol: float = 1e-4,
) -> tuple[list[float], int]:
    """Per-set breakdown utilizations for ``n_sets`` sampled workloads.

    Returns ``(samples, degenerate_count)``.  The two degenerate breakdown
    scales are accounted *asymmetrically*, and both are counted in
    ``degenerate_count``:

    * scale ``inf`` (all-zero payloads): the set is **skipped** — it
      contributes no sample and does not enter the mean;
    * scale ``0``: the set is counted into ``degenerate_count`` **and**
      appended to ``samples`` with utilization exactly 0, so it *does*
      drag the mean down — the protocol cannot carry even infinitesimal
      synchronous load under those overheads, which is real behaviour (it
      happens to TTP at very low bandwidth), not a sampling artifact.

    This double accounting is deliberate and load-bearing: Figure 1's
    low-bandwidth means depend on scale-0 sets contributing zeros.
    ``len(samples) + degenerate_count`` can therefore exceed ``n_sets``.

    Analyses that support batched probing
    (:class:`~repro.analysis.breakdown.SupportsBatchScaleProbe`) or
    closed-form saturation are evaluated through the lockstep batched
    search in chunks of :data:`BATCH_CHUNK_SETS`; the verdicts and scales
    are identical to the scalar path either way.
    """
    if n_sets < 1:
        raise ConfigurationError(f"need at least one sample, got {n_sets!r}")
    message_sets = sampler.sample_many(rng, n_sets)
    if isinstance(predicate, (SupportsSaturationScale, SupportsBatchScaleProbe)):
        results = []
        for start in range(0, len(message_sets), BATCH_CHUNK_SETS):
            results.extend(
                breakdown_utilizations_batch(
                    message_sets[start : start + BATCH_CHUNK_SETS],
                    predicate,
                    bandwidth_bps,
                    rel_tol,
                )
            )
    else:
        results = [
            breakdown_utilization(message_set, predicate, bandwidth_bps, rel_tol)
            for message_set in message_sets
        ]
    samples: list[float] = []
    degenerate = 0
    for result in results:
        if result.scale == float("inf"):
            degenerate += 1
            _INF_SCALE.inc()
            continue
        if result.scale == 0.0:
            degenerate += 1
            _ZERO_SCALE.inc()
        samples.append(result.utilization)
    _SETS_SAMPLED.inc(n_sets)
    _DEGENERATE.inc(degenerate)
    return samples, degenerate


def average_breakdown_utilization(
    predicate: SchedulabilityPredicate | SupportsSaturationScale,
    sampler: MessageSetSampler,
    bandwidth_bps: float,
    n_sets: int,
    rng: np.random.Generator | int | None = None,
    rel_tol: float = 1e-4,
) -> AverageBreakdownEstimate:
    """Estimate the average breakdown utilization of a protocol.

    Args:
        predicate: a schedulability test — an analysis object
            (:class:`~repro.analysis.pdp.PDPAnalysis`,
            :class:`~repro.analysis.ttp.TTPAnalysis`) or a plain callable
            over message sets.
        sampler: the workload distribution.
        bandwidth_bps: bandwidth at which utilizations are evaluated (must
            match the ring inside the predicate for meaningful results).
        n_sets: Monte Carlo sample count.
        rng: a numpy Generator, a seed, or None for fresh entropy.
        rel_tol: relative tolerance of the bisection saturation search.
    """
    if isinstance(rng, np.random.Generator):
        generator = rng
    else:
        generator = np.random.default_rng(rng)
    samples, degenerate = breakdown_samples(
        predicate, sampler, bandwidth_bps, n_sets, generator, rel_tol
    )
    if not samples:
        return AverageBreakdownEstimate(
            mean=0.0, std=0.0, n_sets=0, samples=(), degenerate_sets=degenerate
        )
    arr = np.asarray(samples)
    std = float(np.std(arr, ddof=1)) if arr.size > 1 else 0.0
    return AverageBreakdownEstimate(
        mean=float(np.mean(arr)),
        std=std,
        n_sets=int(arr.size),
        samples=tuple(float(s) for s in arr),
        degenerate_sets=degenerate,
    )
