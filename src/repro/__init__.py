"""repro — Real-Time Schedulability of Two Token Ring Protocols.

A from-scratch reproduction of Kamat & Zhao (ICDCS 1993): exact
schedulability tests for the priority driven token ring protocol
(IEEE 802.5, standard and modified) and the timed token protocol (FDDI),
plus the Monte Carlo average-breakdown-utilization comparison between
them, discrete-event simulators for both protocols, and the experiment
harness regenerating the paper's evaluation.

Quickstart::

    from repro import (
        PDPAnalysis, PDPVariant, TTPAnalysis,
        ieee_802_5_ring, fddi_ring, paper_frame_format,
        MessageSet, SynchronousStream, mbps, milliseconds,
    )

    ring = ieee_802_5_ring(mbps(16))
    workload = MessageSet(
        SynchronousStream(period_s=milliseconds(50), payload_bits=8_000,
                          station=i)
        for i in range(10)
    )
    pdp = PDPAnalysis(ring, paper_frame_format(), PDPVariant.MODIFIED)
    print(pdp.is_schedulable(workload))
"""

from repro.analysis import (
    AverageBreakdownEstimate,
    BreakdownResult,
    ExactRMTest,
    PDPAnalysis,
    PDPVariant,
    TTPAnalysis,
    TTRTPolicy,
    average_breakdown_utilization,
    breakdown_scale,
    breakdown_utilization,
    liu_layland_bound,
    pdp_augmented_length,
    ttp_overhead_delta,
)
from repro.errors import (
    AllocationError,
    ConfigurationError,
    InfeasibleParameterError,
    MessageSetError,
    ReproError,
    SimulationError,
)
from repro.messages import (
    MessageSet,
    MessageSetSampler,
    PeriodDistribution,
    SynchronousStream,
)
from repro.network import (
    FrameFormat,
    RingNetwork,
    fddi_ring,
    ieee_802_5_ring,
    paper_frame_format,
)
from repro.units import mbps, megabits, milliseconds

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # analyses
    "PDPAnalysis",
    "PDPVariant",
    "TTPAnalysis",
    "TTRTPolicy",
    "ExactRMTest",
    "liu_layland_bound",
    "pdp_augmented_length",
    "ttp_overhead_delta",
    "breakdown_scale",
    "breakdown_utilization",
    "BreakdownResult",
    "average_breakdown_utilization",
    "AverageBreakdownEstimate",
    # model
    "MessageSet",
    "SynchronousStream",
    "MessageSetSampler",
    "PeriodDistribution",
    "RingNetwork",
    "FrameFormat",
    "ieee_802_5_ring",
    "fddi_ring",
    "paper_frame_format",
    # units
    "mbps",
    "megabits",
    "milliseconds",
    # errors
    "ReproError",
    "ConfigurationError",
    "InfeasibleParameterError",
    "MessageSetError",
    "AllocationError",
    "SimulationError",
]
