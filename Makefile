# Convenience targets for the repro library.

PYTHON ?= python

.PHONY: install test bench examples report fast-report figure1 all-experiments clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

figure1:
	$(PYTHON) -m repro.experiments.runner figure1 --csv figure1_full.csv

report:
	$(PYTHON) -m repro.experiments.runner report --out report.md

fast-report:
	$(PYTHON) -m repro.experiments.runner report --fast --out report.md

all-experiments:
	$(PYTHON) -m repro.experiments.runner all

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .benchmarks
	find . -type d -name __pycache__ -prune -exec rm -rf {} \;
