# Convenience targets for the repro library.

PYTHON ?= python

.PHONY: help install test verify fuzz-quick bench bench-quick bench-sim bench-service bench-admission bench-loss bench-scale bench-cluster bench-trend top serve examples report fast-report figure1 all-experiments clean

help:
	@echo "Targets:"
	@echo "  install          editable install of the package"
	@echo "  test             run the unit test suite"
	@echo "  verify           tier-1 tests + runner smoke test (manifest"
	@echo "                   written, JSONL logs parse, cache hits > 0)"
	@echo "                   + fuzz-quick"
	@echo "  fuzz-quick       deterministic differential fuzz (fixed seed,"
	@echo "                   <60s) + mutation smoke: every injected bug"
	@echo "                   must be flagged; nonzero exit otherwise"
	@echo "  bench            run every benchmark"
	@echo "  bench-quick      perf canary: single Figure-1 point + analysis"
	@echo "                   micro-benches -> BENCH_figure1.json (tracked"
	@echo "                   across PRs for the perf trajectory; the"
	@echo "                   verify bench guard compares against it)"
	@echo "  bench-sim        simulator canary: cross-validation + fast-path"
	@echo "                   micro-benches -> BENCH_sim.json (events/sec"
	@echo "                   and compression ratios in extra_info)"
	@echo "  bench-service    admission-service canary: spawn the server,"
	@echo "                   5 s closed-loop load -> BENCH_service.json"
	@echo "                   (throughput + per-op latency percentiles +"
	@echo "                   admission-cache hit ratio)"
	@echo "  bench-admission  admission-engine canary: scalar vs incremental,"
	@echo "                   cold vs warm cache, check- vs churn-heavy mixes"
	@echo "                   -> BENCH_admission.json (the verify guard"
	@echo "                   checks warm hit ratios against it)"
	@echo "  bench-loss       lossy-medium canary: breakdown utilization vs"
	@echo "                   loss fraction for both protocols under the"
	@echo "                   retransmission-aware bounds -> BENCH_loss.json"
	@echo "                   (the verify loss canary checks its shape)"
	@echo "  bench-scale      columnar-engine canary: million-stream exact"
	@echo "                   analysis vs the object path (streams/sec +"
	@echo "                   speedup) and streaming Monte Carlo naive vs"
	@echo "                   variance-reduced (evaluations to target CI)"
	@echo "                   -> BENCH_scale.json (the verify scale guard"
	@echo "                   checks the speedup floor against it)"
	@echo "  bench-cluster    sharded-cluster canary: spawn worker fleets at"
	@echo "                   1 and 4 workers behind the consistent-hash"
	@echo "                   router, drive the same seeded load through"
	@echo "                   each -> BENCH_cluster.json (fleet req/s,"
	@echo "                   per-shard latency percentiles, measured"
	@echo "                   scaling ratio + cpu_count for the hardware-"
	@echo "                   aware verify guard)"
	@echo "  bench-trend      append the current BENCH_*.json summaries to"
	@echo "                   BENCH_history.jsonl (the verify trend guard"
	@echo "                   compares future runs against this history)"
	@echo "  top              live terminal dashboard over a spawned server"
	@echo "                   (req/s, p50/p99, cache hit ratio, batch sizes)"
	@echo "  serve            run the admission service on localhost:8787"
	@echo "  examples         run every example script"
	@echo "  figure1          full Figure 1 run, CSV output"
	@echo "  report           full markdown report"
	@echo "  fast-report      scaled-down report (seconds, same shapes)"
	@echo "  all-experiments  every experiment at paper scale"
	@echo "  clean            remove build artifacts and caches"

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

verify:
	$(PYTHON) -m pytest tests/ -x -q
	$(PYTHON) tools/verify_smoke.py
	$(MAKE) fuzz-quick

fuzz-quick:
	PYTHONPATH=src:$$PYTHONPATH $(PYTHON) -m repro.experiments.runner fuzz \
		--fuzz-cases 60 --mutation-smoke --no-manifest --log-level warning

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-quick:
	$(PYTHON) -m pytest \
		benchmarks/test_bench_figure1.py::test_bench_figure1_single_point \
		benchmarks/test_bench_analysis_micro.py \
		--benchmark-only --benchmark-json=BENCH_figure1.json
	PYTHONPATH=src:$$PYTHONPATH $(PYTHON) -m repro.obs.benchjson BENCH_figure1.json

bench-sim:
	$(PYTHON) -m pytest \
		benchmarks/test_bench_sim_validation.py \
		benchmarks/test_bench_sim_fastpath.py \
		--benchmark-only --benchmark-json=BENCH_sim.json
	PYTHONPATH=src:$$PYTHONPATH $(PYTHON) -m repro.obs.benchjson BENCH_sim.json

bench-service:
	PYTHONPATH=src:$$PYTHONPATH $(PYTHON) -m repro.experiments.runner loadgen \
		--spawn --duration 5 --load-workers 8 --no-manifest \
		--log-level warning --bench-json BENCH_service.json
	PYTHONPATH=src:$$PYTHONPATH $(PYTHON) -m repro.obs.benchjson BENCH_service.json

bench-admission:
	PYTHONPATH=src:$$PYTHONPATH $(PYTHON) -m repro.experiments.runner \
		bench-admission --no-manifest --log-level warning \
		--bench-admission-json BENCH_admission.json

bench-loss:
	PYTHONPATH=src:$$PYTHONPATH $(PYTHON) -m repro.experiments.runner \
		loss-sweep --fast --no-manifest --log-level warning \
		--loss-bench-json BENCH_loss.json

bench-scale:
	PYTHONPATH=src:$$PYTHONPATH $(PYTHON) -m repro.experiments.runner \
		bench-scale --no-manifest --log-level warning \
		--scale-bench-json BENCH_scale.json

bench-cluster:
	PYTHONPATH=src:$$PYTHONPATH $(PYTHON) -m repro.experiments.runner \
		bench-cluster --no-manifest --log-level warning \
		--cluster-bench-json BENCH_cluster.json

bench-trend:
	$(PYTHON) tools/bench_trend.py append

top:
	PYTHONPATH=src:$$PYTHONPATH $(PYTHON) -m repro.experiments.runner top \
		--spawn --no-manifest --log-level error

serve:
	PYTHONPATH=src:$$PYTHONPATH $(PYTHON) -m repro.experiments.runner serve \
		--port 8787 --no-manifest

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

figure1:
	$(PYTHON) -m repro.experiments.runner figure1 --csv figure1_full.csv

report:
	$(PYTHON) -m repro.experiments.runner report --out report.md

fast-report:
	$(PYTHON) -m repro.experiments.runner report --fast --out report.md

all-experiments:
	$(PYTHON) -m repro.experiments.runner all

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .benchmarks
	find . -type d -name __pycache__ -prune -exec rm -rf {} \;
